"""Low-overhead span tracer with Chrome-trace-event export.

Design constraints, in order:

1. **Disabled is free.**  Tracing defaults to off; every instrumentation
   site guards on the module-level ``_ENABLED`` flag (one attribute load)
   and the :func:`span` fast path returns a shared no-op context manager,
   so the fully-disabled cost per call site is a flag check.
2. **Enabled is cheap.**  Events are compact tuples written into a
   preallocated ring buffer; slot allocation is a single
   ``itertools.count`` draw (atomic under the GIL), so concurrent threads
   never contend on a lock to record.  Timestamps come from
   ``time.monotonic()`` — on Linux that is ``CLOCK_MONOTONIC``, whose
   epoch is system-wide, which is what makes **cross-process stitching**
   work: a worker process's span timestamps are directly comparable to
   the parent's, so shipping the worker's raw events back over the
   control pipe (:func:`drain` in the worker, :func:`absorb` in the
   parent) yields one coherent timeline.
3. **Standard output format.**  :func:`export` writes Chrome trace event
   JSON (``{"traceEvents": [...]}``, timestamps in microseconds) loadable
   in Perfetto or ``chrome://tracing``.

Span nesting is tracked per thread (thread-local stack) purely to stamp a
``depth`` arg on each event; the Chrome format itself reconstructs nesting
from ``ts``/``dur`` containment per ``(pid, tid)`` track.

Environment:

* ``REPRO_OBS=on`` enables tracing (and profiling) at import time.
* ``REPRO_TRACE=<path>`` exports the ring buffer to ``<path>`` at process
  exit (only in the process that owns the trace — worker processes call
  :func:`suppress_export` so they never clobber the parent's file).
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import threading
import time

__all__ = [
    "ENV_OBS", "ENV_TRACE", "DEFAULT_CAPACITY",
    "enabled", "enable", "disable", "suppress_export",
    "span", "instant", "complete", "now",
    "drain", "absorb", "events_snapshot", "reset", "dropped",
    "set_capacity", "capacity", "to_chrome", "export",
]

ENV_OBS = "REPRO_OBS"
ENV_TRACE = "REPRO_TRACE"
DEFAULT_CAPACITY = 1 << 16


def _env_on(value: str | None) -> bool:
    return (value or "").strip().lower() in ("1", "on", "true", "yes")


_ENABLED = _env_on(os.environ.get(ENV_OBS))
_EXPORT_SUPPRESSED = False

_capacity = DEFAULT_CAPACITY
_events: list = [None] * _capacity
_slots = itertools.count()
_lock = threading.Lock()       # guards drain/reset vs. snapshot only
_tls = threading.local()


def enabled() -> bool:
    return _ENABLED


def enable() -> None:
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


def suppress_export() -> None:
    """Disarm the atexit ``REPRO_TRACE`` export in this process.

    Called by worker processes (shm pool / pickle pool initializers) so
    only the coordinating process writes the trace file.
    """
    global _EXPORT_SUPPRESSED
    _EXPORT_SUPPRESSED = True


def now() -> float:
    """Monotonic timestamp in seconds (system-wide base on Linux)."""
    return time.monotonic()


# --------------------------------------------------------------------- #
# Event store
# --------------------------------------------------------------------- #
# Event tuple layout (kept flat and picklable for the control-pipe hop):
#   (ph, name, cat, ts_us, dur_us, pid, tid, args_or_None)
# ph is "X" (complete) or "i" (instant); ts/dur are floats in microseconds.

def _store(event: tuple) -> None:
    _events[next(_slots) % _capacity] = event


def set_capacity(n: int) -> None:
    """Resize the ring buffer (clears any recorded events)."""
    global _capacity, _events, _slots
    with _lock:
        _capacity = max(int(n), 1)
        _events = [None] * _capacity
        _slots = itertools.count()


def capacity() -> int:
    return _capacity


def _count_value() -> int:
    # itertools.count has no peek; reduce() exposes the next value without
    # consuming it.
    return _slots.__reduce__()[1][0]


def _snapshot_locked() -> list:
    n = _count_value()
    if n <= _capacity:
        return [e for e in _events[:n] if e is not None]
    head = n % _capacity
    return [e for e in _events[head:] + _events[:head] if e is not None]


def events_snapshot() -> list:
    """Recorded events oldest-first, without clearing the buffer."""
    with _lock:
        return _snapshot_locked()


def drain() -> list:
    """Return all recorded events and clear the buffer.

    Workers call this after each job and ship the result back over the
    control pipe; the parent feeds it to :func:`absorb`.
    """
    global _events, _slots
    with _lock:
        out = _snapshot_locked()
        _events = [None] * _capacity
        _slots = itertools.count()
        return out


def absorb(events) -> None:
    """Merge events drained from another process into this buffer.

    Events keep their original pid/tid, so the exported trace renders each
    worker process as its own track, stitched on the shared monotonic
    timeline.
    """
    for event in events:
        _store(event)


def reset() -> None:
    drain()


def dropped() -> int:
    """Events overwritten by ring wraparound since the last drain/reset."""
    return max(0, _count_value() - _capacity)


# --------------------------------------------------------------------- #
# Recording API
# --------------------------------------------------------------------- #
class _NullSpan:
    """Shared no-op context manager returned when tracing is disabled."""
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


NULL = _NullSpan()


class _Span:
    __slots__ = ("name", "cat", "args", "_t0")

    def __init__(self, name: str, cat: str, args: dict | None):
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self):
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = _tls.stack = []
        stack.append(self)
        self._t0 = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb):
        t1 = time.monotonic()
        stack = _tls.stack
        depth = len(stack) - 1
        stack.pop()
        args = self.args if self.args else {}
        args = dict(args, depth=depth)
        _store(("X", self.name, self.cat, self._t0 * 1e6,
                (t1 - self._t0) * 1e6, os.getpid(),
                threading.get_ident(), args))
        return False


def span(name: str, cat: str = "app", **args):
    """Context manager recording a complete ("X") event around its body.

    Returns the shared no-op when tracing is disabled, so call sites can
    use it unconditionally.
    """
    if not _ENABLED:
        return NULL
    return _Span(name, cat, args or None)


def current_depth() -> int:
    stack = getattr(_tls, "stack", None)
    return len(stack) if stack else 0


def instant(name: str, cat: str = "app", **args) -> None:
    """Record an instant ("i") event — supervision/fault markers."""
    if not _ENABLED:
        return
    _store(("i", name, cat, time.monotonic() * 1e6, 0.0,
            os.getpid(), threading.get_ident(), args or None))


def complete(name: str, start_s: float, dur_s: float,
             cat: str = "app", **args) -> None:
    """Record a complete event with explicit timing.

    For windows measured outside a ``with`` block — e.g. per-request queue
    wait (submit time to batch-assembly time) or dispatch→reply windows.
    ``start_s`` must come from :func:`now` (``time.monotonic``).
    """
    if not _ENABLED:
        return
    _store(("X", name, cat, start_s * 1e6, max(dur_s, 0.0) * 1e6,
            os.getpid(), threading.get_ident(), args or None))


# --------------------------------------------------------------------- #
# Export
# --------------------------------------------------------------------- #
def to_chrome(events) -> list[dict]:
    """Convert event tuples to Chrome trace event dicts."""
    out = []
    for ph, name, cat, ts, dur, pid, tid, args in events:
        event = {"ph": ph, "name": name, "cat": cat, "ts": ts,
                 "pid": pid, "tid": tid, "args": args or {}}
        if ph == "X":
            event["dur"] = dur
        elif ph == "i":
            event["s"] = "p"   # process-scoped instant marker
        out.append(event)
    return out


def export(path: str, *, clear: bool = False) -> int:
    """Write the buffer as Chrome trace JSON; returns the event count."""
    events = drain() if clear else events_snapshot()
    payload = {"traceEvents": to_chrome(events), "displayTimeUnit": "ms"}
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    os.replace(tmp, path)
    return len(events)


_TRACE_OWNER_PID = os.getpid()


def _atexit_export() -> None:  # pragma: no cover - exercised in CI leg
    path = os.environ.get(ENV_TRACE)
    if (not path or _EXPORT_SUPPRESSED
            or os.getpid() != _TRACE_OWNER_PID or not _ENABLED):
        return
    try:
        export(path)
    except Exception:
        pass


atexit.register(_atexit_export)
