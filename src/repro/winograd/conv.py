"""Winograd convolution: numpy reference and autograd-composed implementations.

Two entry points are provided:

* :func:`winograd_conv2d` — a pure-numpy forward pass used as the reference in
  tests and analyses.  For unit-stride 3x3 convolutions it matches the im2col
  convolution to floating-point precision.

* :func:`winograd_conv2d_tensor` — an autograd-friendly version where the
  Winograd-domain intermediates are exposed through *hooks*.  The tap-wise
  quantized layer (:class:`repro.quant.qconv.QuantWinogradConv2d`) injects its
  fake-quantization nodes through these hooks, so gradients propagate through
  the Winograd domain exactly as in the paper's Winograd-aware training
  (Section III-A).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..nn.tensor import Tensor, as_tensor
from .tiling import (assemble_output_tiles, extract_tiles, pad_for_tiling,
                     scatter_tiles_add)
from .transforms import WinogradTransform, winograd_f4

__all__ = [
    "winograd_conv2d",
    "winograd_conv2d_tensor",
    "winograd_output_shape",
    "extract_input_tiles_tensor",
    "tile_contract_tensor",
    "assemble_output_tensor",
]

Hook = Callable[[Tensor], Tensor]


def winograd_output_shape(h: int, w: int, r: int = 3, padding: int = 1,
                          ) -> tuple[int, int]:
    """Spatial output size of a unit-stride convolution."""
    return h + 2 * padding - r + 1, w + 2 * padding - r + 1


# --------------------------------------------------------------------------- #
# Pure numpy forward
# --------------------------------------------------------------------------- #
def winograd_conv2d(x: np.ndarray, weight: np.ndarray,
                    transform: WinogradTransform | None = None,
                    bias: np.ndarray | None = None,
                    padding: int = 1) -> np.ndarray:
    """Unit-stride 2-D convolution computed with the Winograd algorithm.

    Parameters
    ----------
    x:
        Input feature map, shape ``(N, Cin, H, W)``.
    weight:
        Kernels, shape ``(Cout, Cin, r, r)``.
    transform:
        Winograd transform to use; defaults to F4.
    bias:
        Optional per-output-channel bias.
    padding:
        Symmetric zero padding (1 gives "same" output for 3x3 kernels).
    """
    transform = transform or winograd_f4()
    m, r, alpha = transform.m, transform.r, transform.alpha
    if weight.shape[2] != r or weight.shape[3] != r:
        raise ValueError(f"kernel size {weight.shape[2:]} does not match transform r={r}")
    n, cin, h, w = x.shape
    cout = weight.shape[0]

    padded, out_h, out_w = pad_for_tiling(x, m, r, padding)
    tiles = extract_tiles(padded, m, r)                     # (N,Cin,nH,nW,a,a)
    tiles_w = transform.BT @ tiles @ transform.BT.T          # input transform
    weight_w = transform.G @ weight @ transform.G.T          # (Cout,Cin,a,a)

    # Tap-wise batched MatMul: accumulate over input channels.
    prod = np.einsum("ncijab,ocab->noijab", tiles_w, weight_w, optimize=True)
    out_tiles = transform.AT @ prod @ transform.AT.T         # back-transform
    out = assemble_output_tiles(out_tiles, out_h, out_w)
    if bias is not None:
        out = out + bias.reshape(1, cout, 1, 1)
    return out


# --------------------------------------------------------------------------- #
# Autograd building blocks
# --------------------------------------------------------------------------- #
def extract_input_tiles_tensor(x: Tensor, transform: WinogradTransform,
                               padding: int = 1) -> tuple[Tensor, int, int]:
    """Differentiable tile extraction.

    Returns the tiles tensor ``(N, Cin, nH, nW, alpha, alpha)`` together with
    the true convolution output size for the later crop.
    """
    x = as_tensor(x)
    m, r = transform.m, transform.r
    padded, out_h, out_w = pad_for_tiling(x.data, m, r, padding)
    padded_shape = padded.shape
    tiles = extract_tiles(padded, m, r)
    orig_shape = x.shape

    def _backward(grad: np.ndarray):
        grad_padded = scatter_tiles_add(grad, padded_shape, m, r)
        h, w = orig_shape[2], orig_shape[3]
        dx = grad_padded[:, :, padding:padding + h, padding:padding + w]
        return (dx,)

    return Tensor.from_op(tiles, (x,), _backward), out_h, out_w


def tile_contract_tensor(input_tiles: Tensor, weight_tiles: Tensor) -> Tensor:
    """Tap-wise multiply-accumulate over input channels.

    ``input_tiles``: ``(N, Cin, nH, nW, alpha, alpha)``
    ``weight_tiles``: ``(Cout, Cin, alpha, alpha)``
    returns ``(N, Cout, nH, nW, alpha, alpha)``.

    This is the operation the accelerator maps onto the Cube Unit as a batched
    MatMul (one independent MatMul per tap).
    """
    input_tiles = as_tensor(input_tiles)
    weight_tiles = as_tensor(weight_tiles)
    xw, ww = input_tiles.data, weight_tiles.data
    out = np.einsum("ncijab,ocab->noijab", xw, ww, optimize=True)

    def _backward(grad: np.ndarray):
        dx = np.einsum("noijab,ocab->ncijab", grad, ww, optimize=True)
        dw = np.einsum("noijab,ncijab->ocab", grad, xw, optimize=True)
        return (dx, dw)

    return Tensor.from_op(out, (input_tiles, weight_tiles), _backward)


def assemble_output_tensor(out_tiles: Tensor, out_h: int, out_w: int) -> Tensor:
    """Differentiable assembly of ``m x m`` output tiles into the feature map."""
    out_tiles = as_tensor(out_tiles)
    n, cout, n_h, n_w, m, _ = out_tiles.shape
    data = assemble_output_tiles(out_tiles.data, out_h, out_w)

    def _backward(grad: np.ndarray):
        full_h, full_w = n_h * m, n_w * m
        padded = np.zeros((n, cout, full_h, full_w), dtype=grad.dtype)
        padded[:, :, :out_h, :out_w] = grad
        tiles = padded.reshape(n, cout, n_h, m, n_w, m).transpose(0, 1, 2, 4, 3, 5)
        return (np.ascontiguousarray(tiles),)

    return Tensor.from_op(data, (out_tiles,), _backward)


def _matmul_const_left(const: np.ndarray, tensor: Tensor) -> Tensor:
    """``const @ tensor`` where ``const`` is a non-trainable matrix."""
    return as_tensor(Tensor(const)) @ tensor


def _matmul_const_right(tensor: Tensor, const: np.ndarray) -> Tensor:
    return tensor @ Tensor(const)


def winograd_conv2d_tensor(x: Tensor, weight: Tensor,
                           transform: WinogradTransform | None = None,
                           bias: Tensor | None = None,
                           padding: int = 1,
                           input_tile_hook: Hook | None = None,
                           weight_tile_hook: Hook | None = None,
                           product_hook: Hook | None = None) -> Tensor:
    """Differentiable Winograd convolution with quantization hooks.

    The hooks receive the Winograd-domain tensors and must return tensors of
    the same shape:

    * ``input_tile_hook``  — applied to ``BT x B``  (shape ``N,Cin,nH,nW,a,a``)
    * ``weight_tile_hook`` — applied to ``G f GT``   (shape ``Cout,Cin,a,a``)
    * ``product_hook``     — applied to the accumulated products before the
      output back-transform (shape ``N,Cout,nH,nW,a,a``); this is where the
      tap-wise rescaling ``S_BG`` of the paper's quantization scheme lives.
    """
    transform = transform or winograd_f4()
    x = as_tensor(x)
    weight = as_tensor(weight)
    cout = weight.shape[0]

    tiles, out_h, out_w = extract_input_tiles_tensor(x, transform, padding)
    tiles_w = _matmul_const_left(transform.BT, _matmul_const_right(tiles, transform.B))
    weight_w = _matmul_const_left(transform.G, _matmul_const_right(weight, transform.G.T))

    if input_tile_hook is not None:
        tiles_w = input_tile_hook(tiles_w)
    if weight_tile_hook is not None:
        weight_w = weight_tile_hook(weight_w)

    prod = tile_contract_tensor(tiles_w, weight_w)
    if product_hook is not None:
        prod = product_hook(prod)

    out_tiles = _matmul_const_left(transform.AT, _matmul_const_right(prod, transform.A))
    out = assemble_output_tensor(out_tiles, out_h, out_w)
    if bias is not None:
        out = out + bias.reshape(1, cout, 1, 1)
    return out
