"""Winograd convolution: numpy reference and autograd-composed implementations.

Two entry points are provided:

* :func:`winograd_conv2d` — a pure-numpy forward pass used as the reference in
  tests and analyses.  For unit-stride 3x3 convolutions it matches the im2col
  convolution to floating-point precision.

* :func:`winograd_conv2d_tensor` — an autograd-friendly version where the
  Winograd-domain intermediates are exposed through *hooks*.  The tap-wise
  quantized layer (:class:`repro.quant.qconv.QuantWinogradConv2d`) injects its
  fake-quantization nodes through these hooks, so gradients propagate through
  the Winograd domain exactly as in the paper's Winograd-aware training
  (Section III-A).

All numerically heavy steps (tile extraction, the ``BT/G/AT`` pair
transforms, the tap-wise contraction, and the scatter-add adjoint) dispatch
through :mod:`repro.kernels`.  Every public entry point takes an optional
``backend=`` argument (``"fast"``/``"reference"``/a
:class:`~repro.kernels.KernelBackend`) for per-call opt-out; by default the
process-wide backend is used (``fast`` unless overridden).

Both entry points *lower-then-execute*: the layer shape is compiled once into
a cached :class:`~repro.engine.LayerPlan` (transform, padding/tiling
geometry, workspace shapes) and executed through :mod:`repro.engine`.  For
the no-hook case :func:`winograd_conv2d_tensor` runs the engine's **fused
forward+backward fast path** — a single autograd node around the backend's
whole-layer kernel.  When hooks intercept the Winograd domain (the tap-wise
quantized layers), the composed primitive-by-primitive graph below remains
the execution strategy, since the hooks must see (and differentiate through)
the intermediate tensors.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..kernels import KernelBackend, get_backend
from ..nn.tensor import Tensor, as_tensor
from .tiling import assemble_output_tiles, pad_for_tiling
from .transforms import WinogradTransform, winograd_f4

__all__ = [
    "winograd_conv2d",
    "winograd_conv2d_tensor",
    "winograd_output_shape",
    "extract_input_tiles_tensor",
    "tile_contract_tensor",
    "transform_pair_tensor",
    "assemble_output_tensor",
]

Hook = Callable[[Tensor], Tensor]


def winograd_output_shape(h: int, w: int, r: int = 3, padding: int = 1,
                          ) -> tuple[int, int]:
    """Spatial output size of a unit-stride convolution."""
    return h + 2 * padding - r + 1, w + 2 * padding - r + 1


# --------------------------------------------------------------------------- #
# Pure numpy forward
# --------------------------------------------------------------------------- #
def winograd_conv2d(x: np.ndarray, weight: np.ndarray,
                    transform: WinogradTransform | None = None,
                    bias: np.ndarray | None = None,
                    padding: int = 1,
                    backend: str | KernelBackend | None = None) -> np.ndarray:
    """Unit-stride 2-D convolution computed with the Winograd algorithm.

    Parameters
    ----------
    x:
        Input feature map, shape ``(N, Cin, H, W)``.
    weight:
        Kernels, shape ``(Cout, Cin, r, r)``.
    transform:
        Winograd transform to use; defaults to F4.
    bias:
        Optional per-output-channel bias.
    padding:
        Symmetric zero padding (1 gives "same" output for 3x3 kernels).
    backend:
        Kernel backend override for this call (see :mod:`repro.kernels`).
    """
    from .. import engine

    be = get_backend(backend)
    transform = transform or winograd_f4()
    if weight.shape[2] != transform.r or weight.shape[3] != transform.r:
        raise ValueError(
            f"kernel size {weight.shape[2:]} does not match transform r={transform.r}")
    plan = engine.lower_winograd(x.shape, weight.shape, transform, padding,
                                 backend=be)
    return engine.execute(plan, x, weight, bias)


# --------------------------------------------------------------------------- #
# Autograd building blocks
# --------------------------------------------------------------------------- #
def extract_input_tiles_tensor(x: Tensor, transform: WinogradTransform,
                               padding: int = 1,
                               backend: str | KernelBackend | None = None,
                               ) -> tuple[Tensor, int, int]:
    """Differentiable tile extraction.

    Returns the tiles tensor ``(N, Cin, nH, nW, alpha, alpha)`` together with
    the true convolution output size for the later crop.
    """
    be = get_backend(backend)
    x = as_tensor(x)
    m, r = transform.m, transform.r
    padded, out_h, out_w = pad_for_tiling(x.data, m, r, padding)
    padded_shape = padded.shape
    tiles = be.extract_tiles(padded, m, r)
    orig_shape = x.shape

    def _backward(grad: np.ndarray):
        grad_padded = be.scatter_tiles_add(grad, padded_shape, m, r)
        h, w = orig_shape[2], orig_shape[3]
        dx = grad_padded[:, :, padding:padding + h, padding:padding + w]
        return (dx,)

    return Tensor.from_op(tiles, (x,), _backward), out_h, out_w


def tile_contract_tensor(input_tiles: Tensor, weight_tiles: Tensor,
                         backend: str | KernelBackend | None = None) -> Tensor:
    """Tap-wise multiply-accumulate over input channels.

    ``input_tiles``: ``(N, Cin, nH, nW, alpha, alpha)``
    ``weight_tiles``: ``(Cout, Cin, alpha, alpha)``
    returns ``(N, Cout, nH, nW, alpha, alpha)``.

    This is the operation the accelerator maps onto the Cube Unit as a batched
    MatMul (one independent MatMul per tap); the ``fast`` backend executes it
    exactly that way — ``alpha²`` batched GEMMs — for the forward pass and
    both adjoints.
    """
    be = get_backend(backend)
    input_tiles = as_tensor(input_tiles)
    weight_tiles = as_tensor(weight_tiles)
    xw, ww = input_tiles.data, weight_tiles.data
    out = be.tile_contract(xw, ww)

    def _backward(grad: np.ndarray):
        dx = be.tile_contract_dx(grad, ww)
        dw = be.tile_contract_dw(grad, xw)
        return (dx, dw)

    return Tensor.from_op(out, (input_tiles, weight_tiles), _backward)


def transform_pair_tensor(t: Tensor, left: np.ndarray, right: np.ndarray,
                          backend: str | KernelBackend | None = None) -> Tensor:
    """Differentiable ``left @ t @ right`` over the trailing tile axes.

    ``left`` and ``right`` are constant (non-trainable) transform matrices;
    the adjoint of ``y = L t R`` is ``dt = Lᵀ g Rᵀ``.  Dispatching through
    the backend lets the fast path fold the whole batch into two GEMMs
    instead of one tiny matmul per tile.
    """
    be = get_backend(backend)
    t = as_tensor(t)
    data = be.apply_transform_pair(t.data, left, right)

    def _backward(grad: np.ndarray):
        return (be.apply_transform_pair(grad, left.T, right.T),)

    return Tensor.from_op(data, (t,), _backward)


def assemble_output_tensor(out_tiles: Tensor, out_h: int, out_w: int) -> Tensor:
    """Differentiable assembly of ``m x m`` output tiles into the feature map."""
    out_tiles = as_tensor(out_tiles)
    n, cout, n_h, n_w, m, _ = out_tiles.shape
    data = assemble_output_tiles(out_tiles.data, out_h, out_w)

    def _backward(grad: np.ndarray):
        full_h, full_w = n_h * m, n_w * m
        padded = np.zeros((n, cout, full_h, full_w), dtype=grad.dtype)
        padded[:, :, :out_h, :out_w] = grad
        tiles = padded.reshape(n, cout, n_h, m, n_w, m).transpose(0, 1, 2, 4, 3, 5)
        return (np.ascontiguousarray(tiles),)

    return Tensor.from_op(data, (out_tiles,), _backward)


def winograd_conv2d_tensor(x: Tensor, weight: Tensor,
                           transform: WinogradTransform | None = None,
                           bias: Tensor | None = None,
                           padding: int = 1,
                           input_tile_hook: Hook | None = None,
                           weight_tile_hook: Hook | None = None,
                           product_hook: Hook | None = None,
                           backend: str | KernelBackend | None = None,
                           plan=None) -> Tensor:
    """Differentiable Winograd convolution with quantization hooks.

    The hooks receive the Winograd-domain tensors and must return tensors of
    the same shape:

    * ``input_tile_hook``  — applied to ``BT x B``  (shape ``N,Cin,nH,nW,a,a``)
    * ``weight_tile_hook`` — applied to ``G f GT``   (shape ``Cout,Cin,a,a``)
    * ``product_hook``     — applied to the accumulated products before the
      output back-transform (shape ``N,Cout,nH,nW,a,a``); this is where the
      tap-wise rescaling ``S_BG`` of the paper's quantization scheme lives.

    ``backend`` selects the kernel backend for every step of this call (the
    forward *and* the recorded backward closures).  ``plan`` optionally
    supplies an already-lowered :class:`~repro.engine.LayerPlan` (it takes
    precedence over ``transform``/``backend``/``padding`` on every path);
    otherwise one is looked up in the shared plan cache.

    When no hook is installed (and the data is float), the call executes as
    the engine's fused single-node autograd op instead of the composed graph.
    """
    from .. import engine

    x = as_tensor(x)
    weight = as_tensor(weight)
    cout = weight.shape[0]

    if plan is not None:
        be = plan.backend
        transform = plan.transform
        padding = plan.padding
    else:
        be = get_backend(backend)
        transform = transform or winograd_f4()

    no_hooks = (input_tile_hook is None and weight_tile_hook is None
                and product_hook is None)
    is_float = (x.data.dtype in (np.float32, np.float64)
                and weight.data.dtype in (np.float32, np.float64))
    if no_hooks and is_float:
        if plan is None:
            plan = engine.lower_winograd(x.shape, weight.shape, transform,
                                         padding, backend=be)
        return engine.execute_tensor(plan, x, weight, bias)

    # Composed fallback: the hooks must see (and differentiate through) the
    # Winograd-domain intermediates, so each stage stays its own graph node.

    tiles, out_h, out_w = extract_input_tiles_tensor(x, transform, padding, backend=be)
    tiles_w = transform_pair_tensor(tiles, transform.BT, transform.B, backend=be)
    weight_w = transform_pair_tensor(weight, transform.G, transform.G.T, backend=be)

    if input_tile_hook is not None:
        tiles_w = input_tile_hook(tiles_w)
    if weight_tile_hook is not None:
        weight_w = weight_tile_hook(weight_w)

    prod = tile_contract_tensor(tiles_w, weight_w, backend=be)
    if product_hook is not None:
        prod = product_hook(prod)

    out_tiles = transform_pair_tensor(prod, transform.AT, transform.A, backend=be)
    out = assemble_output_tensor(out_tiles, out_h, out_w)
    if bias is not None:
        out = out + bias.reshape(1, cout, 1, 1)
    return out
