"""Performance models of the Winograd transformation engines (Table I).

Section IV-B1 of the paper describes two implementation styles for the
hardwired transformation engines:

* **row-by-row** — a spatial PE that consumes one row of the ``hT x hT`` input
  tile per cycle and hardcodes the multiplication with the constant matrix
  ``T`` using adders and fixed shifters.  The second half of the transform can
  reuse the same resources (*slow*) or use additional output-stationary lanes
  (*fast*).

* **tap-by-tap** — a time-unrolled PE with a single configurable
  shifter/adder/accumulator that produces one tap at a time; its cycle count
  depends on the sparsity and shared sub-expressions of ``T`` (analysed by
  :mod:`repro.winograd.dfg`).

The classes below reproduce the cycle counts and read/write bandwidth
requirements summarised in Table I and are consumed by the accelerator model
to size the engines and find the dataflow bottlenecks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dfg import TransformDFG, transform_2d_cost
from .transforms import WinogradTransform

__all__ = [
    "EngineSpec",
    "RowByRowEngine",
    "TapByTapEngine",
    "make_input_engine",
    "make_weight_engine",
    "make_output_engine",
]


@dataclass(frozen=True)
class EngineSpec:
    """Static description of one engine instance.

    Attributes
    ----------
    name:
        Identifier used in reports (``IN_XFORM``, ``WT_XFORM``, ``OUT_XFORM``).
    cycles_per_transform:
        Cycles needed by one PE to transform a single tile.
    parallel_transforms:
        Number of tile transforms processed concurrently (``Pc * Ps`` or
        ``Pc * Ps * Pt``).
    read_bw:
        Input elements consumed per cycle (across all PEs).
    write_bw:
        Output elements produced per cycle (across all PEs).
    """

    name: str
    cycles_per_transform: float
    parallel_transforms: int
    read_bw: float
    write_bw: float

    def transforms_per_cycle(self) -> float:
        """Aggregate throughput in tile transforms per cycle."""
        return self.parallel_transforms / self.cycles_per_transform

    def cycles_for(self, num_transforms: int) -> float:
        """Total cycles to process ``num_transforms`` tile transforms."""
        if num_transforms <= 0:
            return 0.0
        return num_transforms / self.transforms_per_cycle()


class RowByRowEngine:
    """Row-by-row transformation engine (Fig. 3a of the paper).

    Parameters
    ----------
    transform_matrix:
        The constant matrix ``T`` implemented by the PE (``BT`` transposed
        appropriately, ``G``, or ``AT`` depending on the usage point).
    tile_rows, tile_cols:
        Shape ``hT x wT`` of the matrix ``T`` as defined in Eq. (4): the input
        tile is ``hT x hT`` and the output tile is ``wT x wT``.
    pc, ps:
        Parallelism along the channel and spatial dimensions.
    fast:
        Select the *fast* variant (extra output-stationary lanes, fewer
        cycles) or the *slow* variant (resource reuse, more cycles).
    """

    def __init__(self, transform_matrix: np.ndarray, pc: int = 1, ps: int = 1,
                 fast: bool = True, name: str = "row_by_row"):
        self.matrix = np.asarray(transform_matrix, dtype=np.float64)
        self.h_t, self.w_t = self.matrix.shape
        self.pc = int(pc)
        self.ps = int(ps)
        self.fast = bool(fast)
        self.name = name
        self._dfg = TransformDFG.from_matrix(self.matrix.T)

    # Table I rows -------------------------------------------------------- #
    @property
    def cycles_per_transform(self) -> int:
        return self.h_t if self.fast else self.h_t + self.w_t

    @property
    def parallel_transforms(self) -> int:
        return self.pc * self.ps

    @property
    def read_bw_elems(self) -> int:
        return self.pc * self.ps * self.h_t

    @property
    def write_bw_elems(self) -> int:
        if self.fast:
            return self.pc * self.ps * self.w_t * self.w_t
        return self.pc * self.ps * self.h_t

    # Hardware-cost proxies ------------------------------------------------ #
    def adders_per_pe(self) -> int:
        """Adders of a single PE.

        The slow variant hardcodes one vector-matrix product; the fast variant
        additionally needs ``wT x wT`` output-stationary accumulation lanes.
        """
        base = self._dfg.adders_with_cse() * self.h_t
        if self.fast:
            return base + self.w_t * self.w_t
        return base

    def total_adders(self) -> int:
        return self.adders_per_pe() * self.parallel_transforms

    def spec(self) -> EngineSpec:
        return EngineSpec(
            name=self.name,
            cycles_per_transform=float(self.cycles_per_transform),
            parallel_transforms=self.parallel_transforms,
            read_bw=float(self.read_bw_elems),
            write_bw=float(self.write_bw_elems),
        )


class TapByTapEngine:
    """Tap-by-tap transformation engine (Fig. 3b of the paper).

    The per-tile cycle count is derived from the shift-and-add DFG of the
    transform matrix, exploiting sparsity and CSE-in-time as the paper does.
    """

    def __init__(self, transform_matrix: np.ndarray, pc: int = 1, ps: int = 1,
                 pt: int = 1, name: str = "tap_by_tap"):
        self.matrix = np.asarray(transform_matrix, dtype=np.float64)
        self.h_t, self.w_t = self.matrix.shape
        self.pc = int(pc)
        self.ps = int(ps)
        self.pt = int(pt)
        self.name = name
        self._cost = transform_2d_cost(self.matrix.T)

    @property
    def cycles_per_transform(self) -> float:
        """Cycles for one full 2-D tile transform with ``pt`` parallel taps."""
        return max(self._cost["total_sequential_cycles"] / self.pt, 1.0)

    @property
    def parallel_transforms(self) -> int:
        return self.pc * self.ps

    @property
    def read_bw_elems(self) -> int:
        # One input element per cycle per (pc, ps) PE group: parallel taps
        # share the same input reads (Section IV-B1).
        return self.pc * self.ps

    @property
    def write_bw_elems(self) -> int:
        return self.pc * self.ps

    def adders_per_pe(self) -> int:
        return self.pt  # one adder/accumulator per parallel tap

    def total_adders(self) -> int:
        return self.adders_per_pe() * self.parallel_transforms

    def spec(self) -> EngineSpec:
        return EngineSpec(
            name=self.name,
            cycles_per_transform=self.cycles_per_transform,
            parallel_transforms=self.parallel_transforms,
            read_bw=float(self.read_bw_elems),
            write_bw=float(self.write_bw_elems),
        )


# --------------------------------------------------------------------------- #
# Factory helpers matching the paper's design choices (Section IV-B2)
# --------------------------------------------------------------------------- #
def make_input_engine(transform: WinogradTransform, pc: int = 32, ps: int = 2,
                      fast: bool = True) -> RowByRowEngine:
    """The iFM transformation engine in the MTE1 (row-by-row, 32x2 PEs)."""
    return RowByRowEngine(transform.BT, pc=pc, ps=ps, fast=fast, name="IN_XFORM")


def make_weight_engine(transform: WinogradTransform, pc: int = 1, ps: int = 1,
                       pt: int = 4) -> TapByTapEngine:
    """The weight transformation engine in the MTE1 (tap-by-tap).

    The paper sizes it to match the external weight-transfer bandwidth while
    occupying minimum area.
    """
    return TapByTapEngine(transform.G, pc=pc, ps=ps, pt=pt, name="WT_XFORM")


def make_output_engine(transform: WinogradTransform, pc: int = 16, ps: int = 1,
                       fast: bool = True) -> RowByRowEngine:
    """The oFM transformation engine in the FixPipe (row-by-row fast, 16 PEs)."""
    return RowByRowEngine(transform.AT, pc=pc, ps=ps, fast=fast, name="OUT_XFORM")
