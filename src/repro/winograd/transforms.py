"""Winograd transformation matrices and tile-level transform operations.

The F(2x2, 3x3) and F(4x4, 3x3) matrices are hard-coded exactly as printed in
Section II of the paper; these are also the matrices the hardware
transformation engines implement with shift-and-add networks.  A generic
constructor based on :mod:`repro.winograd.cook_toom` is provided for other
tile sizes (e.g. the F(6,3) used in some GPU libraries, or the huge F14 used
by the RNS-based related work).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from functools import lru_cache

import numpy as np

from .cook_toom import cook_toom_matrices

__all__ = [
    "WinogradTransform",
    "IntegerTransformMatrices",
    "winograd_f2",
    "winograd_f4",
    "winograd_f6",
    "get_transform",
    "integer_transform_matrices",
    "transform_input_tile",
    "transform_weight",
    "transform_output_tile",
    "inverse_weight_transform",
    "bit_growth",
    "macs_reduction",
]


@dataclass(frozen=True, eq=False)
class WinogradTransform:
    """Container for the three transformation matrices of F(m x m, r x r).

    Instances are immutable: the matrices are defensively copied and marked
    read-only on construction, so a transform can be shared freely (the
    factory functions below are ``lru_cache``-d singletons) and used as a key
    in per-transform caches such as :func:`integer_transform_matrices`.
    Equality/hashing is by identity (``eq=False``), which is what the caches
    need and what the singleton factories make natural.

    Attributes
    ----------
    m:
        Output tile size.
    r:
        Kernel size.
    BT, G, AT:
        Input, weight, and output transformation matrices (read-only).
    name:
        Human readable identifier (``"F2"``, ``"F4"``, ...).
    """

    m: int
    r: int
    BT: np.ndarray
    G: np.ndarray
    AT: np.ndarray
    name: str = field(default="")

    def __post_init__(self):
        for attr in ("BT", "G", "AT"):
            matrix = np.array(getattr(self, attr), dtype=np.float64)
            matrix.setflags(write=False)
            object.__setattr__(self, attr, matrix)
        alpha = self.m + self.r - 1
        if self.BT.shape != (alpha, alpha):
            raise ValueError(f"BT must be {alpha}x{alpha}, got {self.BT.shape}")
        if self.G.shape != (alpha, self.r):
            raise ValueError(f"G must be {alpha}x{self.r}, got {self.G.shape}")
        if self.AT.shape != (self.m, alpha):
            raise ValueError(f"AT must be {self.m}x{alpha}, got {self.AT.shape}")

    @property
    def alpha(self) -> int:
        """Winograd tile size m + r - 1 (number of taps per dimension)."""
        return self.m + self.r - 1

    @property
    def num_taps(self) -> int:
        """Number of taps of the 2-D transform (alpha squared)."""
        return self.alpha * self.alpha

    @property
    def B(self) -> np.ndarray:
        return self.BT.T

    @property
    def A(self) -> np.ndarray:
        return self.AT.T

    def __repr__(self) -> str:  # pragma: no cover
        return f"WinogradTransform({self.name or f'F{self.m}'}, m={self.m}, r={self.r})"


@lru_cache(maxsize=None)
def winograd_f2() -> WinogradTransform:
    """F(2x2, 3x3) matrices from Section II of the paper (roots {0, 1, -1}).

    Cached: repeated calls return the same immutable instance, so experiment
    loops and benchmarks do not rebuild (or re-transform) the matrices.
    """
    bt = np.array([
        [1, 0, -1, 0],
        [0, 1, 1, 0],
        [0, -1, 1, 0],
        [0, 1, 0, -1],
    ], dtype=np.float64)
    g = 0.5 * np.array([
        [2, 0, 0],
        [1, 1, 1],
        [1, -1, 1],
        [0, 0, 2],
    ], dtype=np.float64)
    at = np.array([
        [1, 1, 1, 0],
        [0, 1, -1, -1],
    ], dtype=np.float64)
    return WinogradTransform(m=2, r=3, BT=bt, G=g, AT=at, name="F2")


@lru_cache(maxsize=None)
def winograd_f4() -> WinogradTransform:
    """F(4x4, 3x3) matrices from Section II of the paper.

    These are the canonical Lavin & Gray matrices; the paper writes the G
    matrix with a 1/3 prefactor which is expanded here.  Cached — see
    :func:`winograd_f2`.
    """
    bt = np.array([
        [4, 0, -5, 0, 1, 0],
        [0, -4, -4, 1, 1, 0],
        [0, 4, -4, -1, 1, 0],
        [0, -2, -1, 2, 1, 0],
        [0, 2, -1, -2, 1, 0],
        [0, 4, 0, -5, 0, 1],
    ], dtype=np.float64)
    g = (1.0 / 3.0) * np.array([
        [3.0 / 4.0, 0, 0],
        [-1.0 / 2.0, -1.0 / 2.0, -1.0 / 2.0],
        [-1.0 / 2.0, 1.0 / 2.0, -1.0 / 2.0],
        [1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0],
        [1.0 / 8.0, -1.0 / 4.0, 1.0 / 2.0],
        [0, 0, 3.0],
    ], dtype=np.float64)
    at = np.array([
        [1, 1, 1, 1, 1, 0],
        [0, 1, -1, 2, -2, 0],
        [0, 1, 1, 4, 4, 0],
        [0, 1, -1, 8, -8, 1],
    ], dtype=np.float64)
    return WinogradTransform(m=4, r=3, BT=bt, G=g, AT=at, name="F4")


@lru_cache(maxsize=None)
def winograd_f6() -> WinogradTransform:
    """F(6x6, 3x3) generated with the Cook–Toom construction (cached).

    Not used by the paper's accelerator (numerical error grows too large for
    int8), but useful for studying the accuracy-vs-tile-size trade-off the
    paper refers to when discussing F14/RNS related work.
    """
    points = [Fraction(0), Fraction(1), Fraction(-1), Fraction(2), Fraction(-2),
              Fraction(1, 2), Fraction(-1, 2)]
    bt, g, at = cook_toom_matrices(6, 3, points)
    return WinogradTransform(m=6, r=3, BT=bt, G=g, AT=at, name="F6")


_REGISTRY = {
    "F2": winograd_f2,
    "F4": winograd_f4,
    "F6": winograd_f6,
}


def get_transform(name: str) -> WinogradTransform:
    """Look up a transform by name (``"F2"``, ``"F4"``, ``"F6"``).

    The factories are cached, so this always returns the shared singleton.
    """
    key = name.upper()
    if key not in _REGISTRY:
        raise KeyError(f"unknown Winograd transform {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[key]()


@dataclass(frozen=True)
class IntegerTransformMatrices:
    """Exact integer variants of a transform's matrices, where they exist.

    ``BT`` and ``AT`` of F2/F4 are integral, which is what lets the hardware
    (and the integer-simulation path in :mod:`repro.quant.integer`) run the
    input/output transforms bit-exactly on integers.  Entries are ``None``
    when the matrix has non-integer coefficients (e.g. every matrix of F6,
    or ``G`` in general).
    """

    BT: np.ndarray | None
    G: np.ndarray | None
    AT: np.ndarray | None


@lru_cache(maxsize=64)
def integer_transform_matrices(transform: WinogradTransform) -> IntegerTransformMatrices:
    """Per-transform cache of the rounded int64 matrices (read-only arrays)."""
    def as_integer(matrix: np.ndarray) -> np.ndarray | None:
        rounded = np.rint(matrix)
        if not np.array_equal(rounded, matrix):
            return None
        out = rounded.astype(np.int64)
        out.setflags(write=False)
        return out

    return IntegerTransformMatrices(BT=as_integer(transform.BT),
                                    G=as_integer(transform.G),
                                    AT=as_integer(transform.AT))


# --------------------------------------------------------------------------- #
# Tile-level transforms.  All functions broadcast over leading dimensions, so
# a whole batch of tiles / filters is transformed with two einsum-like matmuls.
# --------------------------------------------------------------------------- #
def transform_input_tile(tiles: np.ndarray, transform: WinogradTransform) -> np.ndarray:
    """Compute ``BT x B`` for tiles shaped ``(..., alpha, alpha)``."""
    bt = transform.BT
    return bt @ tiles @ bt.T


def transform_weight(weights: np.ndarray, transform: WinogradTransform) -> np.ndarray:
    """Compute ``G f GT`` for kernels shaped ``(..., r, r)``.

    Returns an array shaped ``(..., alpha, alpha)``.
    """
    g = transform.G
    return g @ weights @ g.T


def transform_output_tile(tiles: np.ndarray, transform: WinogradTransform) -> np.ndarray:
    """Compute ``AT Y A`` for Winograd-domain tiles shaped ``(..., alpha, alpha)``."""
    at = transform.AT
    return at @ tiles @ at.T


def inverse_weight_transform(weights_wino: np.ndarray,
                             transform: WinogradTransform) -> np.ndarray:
    """Map Winograd-domain weights back to the spatial domain.

    Uses the Moore–Penrose pseudo-inverse of ``G`` (computed through SVD),
    exactly as the paper does for the quantization-error analysis of Fig. 4:
    ``f ≈ G⁺ (G f Gᵀ) (Gᵀ)⁺``.
    """
    g_pinv = np.linalg.pinv(transform.G)
    return g_pinv @ weights_wino @ g_pinv.T


# --------------------------------------------------------------------------- #
# Numerical / complexity properties
# --------------------------------------------------------------------------- #
def bit_growth(transform: WinogradTransform) -> dict[str, int]:
    """Worst-case extra bits required for bit-true computation of each transform.

    A 1-D row dot-product with coefficients ``c`` applied to n-bit data grows
    by ``log2(sum|c|)`` bits; the 2-D transform applies the matrix along both
    dimensions, so the total extra bits are ``ceil(log2((max_row_sum)²))``.
    Fractional matrices (the weight transform ``G``) are first scaled to
    integers, which is how a hardware datapath would realise them.

    For F2 this reproduces the ~2/3 extra bits quoted in Section II; for F4
    it reproduces the ~8 extra bits for the feature maps and 10 extra bits for
    the weights that motivate tap-wise quantization (Challenge I).
    """
    def growth(matrix: np.ndarray) -> int:
        scaled = matrix * _fractional_lcm(matrix)
        row_sums = np.abs(scaled).sum(axis=1)
        return int(np.ceil(2.0 * np.log2(np.max(row_sums))))

    return {
        "input": growth(transform.BT),
        "weight": growth(transform.G),
        "output": growth(transform.AT),
    }


def _fractional_lcm(matrix: np.ndarray, max_denominator: int = 1 << 16) -> int:
    """Smallest integer that makes every entry of ``matrix`` an integer."""
    import math
    from fractions import Fraction as _Fraction

    denominators = [
        _Fraction(float(v)).limit_denominator(max_denominator).denominator
        for v in np.asarray(matrix).reshape(-1)
    ]
    return math.lcm(*denominators) if denominators else 1


def macs_reduction(transform: WinogradTransform) -> float:
    """Theoretical MAC reduction of F(m, r) vs the direct algorithm.

    ``m² · r² / (m + r - 1)²`` — 2.25x for F2 and 4x for F4 with r = 3
    (Section I of the paper).
    """
    m, r, alpha = transform.m, transform.r, transform.alpha
    return (m * m * r * r) / float(alpha * alpha)
