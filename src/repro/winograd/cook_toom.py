"""General Cook–Toom / Winograd transform-matrix construction.

The paper uses the canonical F(2x2, 3x3) and F(4x4, 3x3) matrices (Section II).
This module derives transform matrices for *arbitrary* output tile size ``m``
and kernel size ``r`` from a set of interpolation points, following the
transposition principle: the minimal filtering algorithm F(m, r) is the
transpose of the Toom–Cook polynomial-multiplication algorithm for degrees
``m-1`` and ``r-1``.

Construction
------------
Choose ``alpha - 1`` distinct finite points plus the point at infinity, where
``alpha = m + r - 1``:

* ``G``  (alpha × r)   — evaluation of the filter polynomial at the points,
* ``Bᵀ`` (alpha × alpha) — transpose of the interpolation matrix,
* ``Aᵀ`` (m × alpha)   — transpose of the evaluation matrix of the output
  polynomial.

The resulting matrices satisfy, for any signal ``d`` (length alpha) and
filter ``g`` (length r)::

    Aᵀ [ (G g) ⊙ (Bᵀ d) ]  ==  valid correlation of d with g   (m outputs)

They may differ from the textbook matrices by a per-point diagonal scaling,
which does not affect correctness (the product of the three scalings per
point is one).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

__all__ = ["cook_toom_matrices", "default_points", "verify_transform_1d"]


def default_points(num_points: int) -> list[Fraction]:
    """Return a conventional set of finite interpolation points.

    The ordering follows common practice (0, 1, -1, 2, -2, 1/2, -1/2, ...),
    which keeps the transform coefficients small — exactly the property the
    paper exploits to build shift-and-add transformation engines.
    """
    candidates = [Fraction(0), Fraction(1), Fraction(-1), Fraction(2), Fraction(-2),
                  Fraction(1, 2), Fraction(-1, 2), Fraction(3), Fraction(-3),
                  Fraction(4), Fraction(-4), Fraction(1, 4), Fraction(-1, 4)]
    if num_points > len(candidates):
        extra = [Fraction(k) for k in range(5, 5 + num_points - len(candidates))]
        candidates = candidates + extra
    return candidates[:num_points]


def _evaluation_matrix(points: list[Fraction], num_coeffs: int) -> np.ndarray:
    """Evaluation matrix of a polynomial with ``num_coeffs`` coefficients.

    Rows are the finite points followed by the point at infinity (which
    extracts the leading coefficient).
    """
    rows = []
    for p in points:
        rows.append([float(p) ** j for j in range(num_coeffs)])
    infinity_row = [0.0] * num_coeffs
    infinity_row[-1] = 1.0
    rows.append(infinity_row)
    return np.array(rows, dtype=np.float64)


def cook_toom_matrices(m: int, r: int, points: list[Fraction] | None = None
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Construct ``(BT, G, AT)`` for the Winograd algorithm F(m, r).

    Parameters
    ----------
    m:
        Output tile size (per dimension).
    r:
        Filter size (per dimension).
    points:
        ``m + r - 2`` distinct finite interpolation points.  Defaults to
        :func:`default_points`.

    Returns
    -------
    (BT, G, AT):
        ``BT`` is alpha×alpha, ``G`` is alpha×r, ``AT`` is m×alpha with
        ``alpha = m + r - 1``.
    """
    if m < 1 or r < 1:
        raise ValueError("m and r must be positive")
    alpha = m + r - 1
    if points is None:
        points = default_points(alpha - 1)
    points = list(points)
    if len(points) != alpha - 1:
        raise ValueError(f"need {alpha - 1} finite points for F({m},{r}), got {len(points)}")
    if len(set(points)) != len(points):
        raise ValueError("interpolation points must be distinct")

    # Evaluation matrices for the filter (degree r-1) and the "output"
    # polynomial (degree m-1), both at the same point set (+ infinity).
    eval_r = _evaluation_matrix(points, r)          # alpha x r
    eval_m = _evaluation_matrix(points, m)          # alpha x m
    eval_alpha = _evaluation_matrix(points, alpha)  # alpha x alpha

    g_matrix = eval_r
    at_matrix = eval_m.T
    interpolation = np.linalg.inv(eval_alpha)
    bt_matrix = interpolation.T
    return bt_matrix, g_matrix, at_matrix


def verify_transform_1d(bt: np.ndarray, g: np.ndarray, at: np.ndarray,
                        rng: np.random.Generator | None = None,
                        trials: int = 8, atol: float = 1e-8) -> float:
    """Return the max abs error of the 1-D Winograd algorithm vs direct correlation.

    Used both in tests and as a sanity check when constructing transforms for
    unusual (m, r) pairs, where ill-conditioned point sets can introduce
    numerical error (the paper's "diminishing returns" for large tiles).
    """
    rng = rng or np.random.default_rng(0)
    alpha = bt.shape[0]
    r = g.shape[1]
    m = at.shape[0]
    if alpha != m + r - 1:
        raise ValueError("inconsistent matrix sizes")
    worst = 0.0
    for _ in range(trials):
        d = rng.normal(size=alpha)
        f = rng.normal(size=r)
        wino = at @ ((g @ f) * (bt @ d))
        direct = np.array([np.dot(d[i:i + r], f) for i in range(m)])
        worst = max(worst, float(np.max(np.abs(wino - direct))))
    if worst > atol:
        # Not raising: callers may tolerate larger tiles' numerical error, the
        # paper itself discusses this effect for m > 4.
        pass
    return worst
