"""Winograd convolution algorithms, transforms, and hardware-engine models."""

from .conv import (winograd_conv2d, winograd_conv2d_tensor, winograd_output_shape)
from .cook_toom import cook_toom_matrices, default_points, verify_transform_1d
from .dfg import TransformDFG, csd_decompose, shift_add_cost, transform_2d_cost
from .engines import (EngineSpec, RowByRowEngine, TapByTapEngine,
                      make_input_engine, make_output_engine, make_weight_engine)
from .tiling import (assemble_output_tiles, extract_tiles, pad_for_tiling,
                     scatter_tiles_add, tile_counts)
from .transforms import (IntegerTransformMatrices, WinogradTransform, bit_growth,
                         get_transform, integer_transform_matrices,
                         inverse_weight_transform, macs_reduction,
                         transform_input_tile, transform_output_tile,
                         transform_weight, winograd_f2, winograd_f4, winograd_f6)

__all__ = [
    "WinogradTransform", "winograd_f2", "winograd_f4", "winograd_f6", "get_transform",
    "IntegerTransformMatrices", "integer_transform_matrices",
    "transform_input_tile", "transform_weight", "transform_output_tile",
    "inverse_weight_transform", "bit_growth", "macs_reduction",
    "winograd_conv2d", "winograd_conv2d_tensor", "winograd_output_shape",
    "cook_toom_matrices", "default_points", "verify_transform_1d",
    "TransformDFG", "csd_decompose", "shift_add_cost", "transform_2d_cost",
    "EngineSpec", "RowByRowEngine", "TapByTapEngine",
    "make_input_engine", "make_weight_engine", "make_output_engine",
    "extract_tiles", "pad_for_tiling", "assemble_output_tiles", "scatter_tiles_add",
    "tile_counts",
]
