"""Tiling utilities: splitting feature maps into overlapping Winograd tiles.

The Winograd algorithm processes the input feature map in overlapping tiles of
``alpha x alpha`` (stride ``m``) and produces non-overlapping ``m x m`` output
tiles.  The paper points out (Section V-B5) that the output spatial resolution
must be a multiple of ``m``; when it is not, the operator zero-pads and adds
ineffective computations — the same behaviour is reproduced here and surfaces
in the accelerator model as wasted tiles.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "tile_counts",
    "pad_for_tiling",
    "extract_tiles",
    "scatter_tiles_add",
    "assemble_output_tiles",
]


def tile_counts(out_h: int, out_w: int, m: int) -> tuple[int, int]:
    """Number of Winograd tiles needed to cover an ``out_h x out_w`` output."""
    n_h = (out_h + m - 1) // m
    n_w = (out_w + m - 1) // m
    return n_h, n_w


def pad_for_tiling(x: np.ndarray, m: int, r: int, padding: int) -> tuple[np.ndarray, int, int]:
    """Zero-pad ``x`` (NCHW) so that it can be split into full Winograd tiles.

    Returns the padded array together with the convolution output size
    (before Winograd rounding), which is needed to crop the assembled result.

    The dtype of ``x`` is preserved — integer feature maps stay integer, so
    the int-only simulation path (:mod:`repro.quant.integer`) never has to
    detour through float64 just to pad.
    """
    n, c, h, w = x.shape
    out_h = h + 2 * padding - r + 1
    out_w = w + 2 * padding - r + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("input too small for the requested kernel/padding")
    n_h, n_w = tile_counts(out_h, out_w, m)
    needed_h = n_h * m + r - 1
    needed_w = n_w * m + r - 1
    pad_bottom = needed_h - (h + 2 * padding)
    pad_right = needed_w - (w + 2 * padding)
    padded = np.pad(x, ((0, 0), (0, 0),
                        (padding, padding + max(pad_bottom, 0)),
                        (padding, padding + max(pad_right, 0))))
    return padded, out_h, out_w


def extract_tiles(x_padded: np.ndarray, m: int, r: int,
                  copy: bool = True) -> np.ndarray:
    """Extract overlapping ``alpha x alpha`` tiles with stride ``m``.

    Parameters
    ----------
    x_padded:
        Already-padded input of shape ``(N, C, Hp, Wp)`` where
        ``Hp = n_h * m + r - 1``.
    copy:
        When true (default), the strided view is materialised as a contiguous
        array callers may mutate safely.  When false, the read-only view is
        returned directly — the cheap option when the consumer only reads
        (e.g. feeds a GEMM, which buffers its operands anyway; the kernel
        backends carry their own equivalents of this no-copy path).

    Returns
    -------
    ndarray of shape ``(N, C, n_h, n_w, alpha, alpha)``.
    """
    alpha = m + r - 1
    n, c, hp, wp = x_padded.shape
    n_h = (hp - (r - 1)) // m
    n_w = (wp - (r - 1)) // m
    s0, s1, s2, s3 = x_padded.strides
    tiles = np.lib.stride_tricks.as_strided(
        x_padded,
        shape=(n, c, n_h, n_w, alpha, alpha),
        strides=(s0, s1, s2 * m, s3 * m, s2, s3),
        writeable=False,
    )
    return np.ascontiguousarray(tiles) if copy else tiles


def scatter_tiles_add(grad_tiles: np.ndarray, padded_shape: tuple[int, int, int, int],
                      m: int, r: int) -> np.ndarray:
    """Adjoint of :func:`extract_tiles`: scatter-add overlapping tiles back.

    Dispatches to the active kernel backend; the ``fast`` backend replaces
    the historical ``n_h x n_w`` Python double loop with a handful of strided
    block adds (see :func:`repro.kernels.fast.scatter_tiles_add`).
    """
    from ..kernels import get_backend
    return get_backend().scatter_tiles_add(grad_tiles, padded_shape, m, r)


def assemble_output_tiles(out_tiles: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Stitch non-overlapping ``m x m`` output tiles and crop to the true size.

    ``out_tiles`` has shape ``(N, Cout, n_h, n_w, m, m)``.
    """
    n, cout, n_h, n_w, m, m2 = out_tiles.shape
    if m != m2:
        raise ValueError("output tiles must be square")
    full = out_tiles.transpose(0, 1, 2, 4, 3, 5).reshape(n, cout, n_h * m, n_w * m)
    return np.ascontiguousarray(full[:, :, :out_h, :out_w])
