"""Data-flow-graph analysis of the Winograd transformation matrices.

Section IV-B1 of the paper describes how the hardware transformation engines
are derived: the whole transform ``sw = Tᵀ (s T)`` is unrolled into a flat
data-flow graph (DFG), multiplications with constants are replaced by
shift-and-add networks (using the canonical signed-digit recoding), common
subexpressions are eliminated (CSE), and the bitwidth of every intermediate
value is kept minimal.

This module reproduces that analysis in software.  It produces the adder /
shifter counts that size the engines (feeding the area model of Table V) and
the per-tap cycle counts of the *tap-by-tap* engine (Table I's "T dependent"
entry).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

import numpy as np

__all__ = [
    "csd_decompose",
    "shift_add_cost",
    "LinearTerm",
    "TransformDFG",
    "transform_2d_cost",
]


def csd_decompose(value: int) -> list[tuple[int, int]]:
    """Canonical signed-digit decomposition of an integer.

    Returns a list of ``(shift, sign)`` pairs such that
    ``value == sum(sign * 2**shift)`` with the minimal number of non-zero
    digits.  E.g. ``5 -> [(0, +1), (2, +1)]`` and ``7 -> [(3, +1), (0, -1)]``.
    """
    if value == 0:
        return []
    sign = 1 if value > 0 else -1
    v = abs(int(value))
    digits: list[tuple[int, int]] = []
    shift = 0
    while v:
        if v & 1:
            # Look at the two least-significant bits to decide between +1/-1.
            if (v & 3) == 3:
                digits.append((shift, -1))
                v += 1
            else:
                digits.append((shift, 1))
                v -= 1
        v >>= 1
        shift += 1
    return [(s, d * sign) for s, d in digits]


def shift_add_cost(value: float, max_denominator: int = 1 << 12) -> tuple[int, int]:
    """Return ``(num_terms, num_shifts)`` to multiply by ``value`` with shift/adds.

    Fractional coefficients (like the 1/8, 1/4 entries of the F4 ``G`` matrix)
    are handled by scaling to an integer and counting the final right-shift —
    exactly the ``(a + b) >> 1`` trick quoted in Section II for F2 weights.
    """
    frac = Fraction(value).limit_denominator(max_denominator)
    numerator = frac.numerator
    denominator = frac.denominator
    terms = csd_decompose(numerator)
    num_terms = len(terms)
    num_shifts = sum(1 for shift, _ in terms if shift != 0)
    if denominator != 1:
        num_shifts += 1  # final normalisation shift
    return num_terms, num_shifts


@dataclass(frozen=True)
class LinearTerm:
    """One output of a vector-matrix product as a sparse linear combination."""

    coefficients: tuple[tuple[int, Fraction], ...]  # (input index, coefficient)

    @staticmethod
    def from_row(row: np.ndarray, max_denominator: int = 1 << 12) -> "LinearTerm":
        coeffs = []
        for idx, value in enumerate(row):
            if abs(value) > 1e-12:
                coeffs.append((idx, Fraction(float(value)).limit_denominator(max_denominator)))
        return LinearTerm(tuple(coeffs))

    @property
    def num_inputs(self) -> int:
        return len(self.coefficients)

    def addend_count(self) -> int:
        """Number of shift-and-add addends needed to evaluate this output."""
        total = 0
        for _, coeff in self.coefficients:
            terms, _ = shift_add_cost(float(coeff))
            total += max(terms, 1)
        return total

    def adders(self) -> int:
        """Number of two-input adders (addends - 1, at least 0)."""
        return max(self.addend_count() - 1, 0)

    def pair_patterns(self) -> set[tuple]:
        """All unordered coefficient pairs, used by the CSE pass."""
        pairs = set()
        coeffs = self.coefficients
        for i in range(len(coeffs)):
            for j in range(i + 1, len(coeffs)):
                a, b = coeffs[i], coeffs[j]
                # Normalise so that the pattern is scale-invariant: a shared
                # sub-expression x + 2y also serves 2x + 4y after one shift.
                if a[1] == 0:
                    continue
                ratio = b[1] / a[1]
                pairs.add((a[0], b[0], ratio))
        return pairs


@dataclass
class TransformDFG:
    """Shift-and-add data-flow graph for ``y = T @ x`` with constant ``T``.

    Attributes
    ----------
    matrix:
        The constant transform matrix.
    rows:
        One :class:`LinearTerm` per output.
    cse_savings:
        Number of adders saved by the greedy common-subexpression pass.
    """

    matrix: np.ndarray
    rows: list[LinearTerm] = field(default_factory=list)
    cse_savings: int = 0

    @staticmethod
    def from_matrix(matrix: np.ndarray) -> "TransformDFG":
        matrix = np.asarray(matrix, dtype=np.float64)
        rows = [LinearTerm.from_row(matrix[i]) for i in range(matrix.shape[0])]
        dfg = TransformDFG(matrix=matrix, rows=rows)
        dfg.cse_savings = dfg._greedy_cse_savings()
        return dfg

    # ------------------------------------------------------------------ #
    # Cost metrics
    # ------------------------------------------------------------------ #
    def adders_without_cse(self) -> int:
        return sum(row.adders() for row in self.rows)

    def adders_with_cse(self) -> int:
        return max(self.adders_without_cse() - self.cse_savings, 0)

    def shifters(self) -> int:
        total = 0
        for row in self.rows:
            for _, coeff in row.coefficients:
                _, shifts = shift_add_cost(float(coeff))
                total += shifts
        return total

    def nonzero_fraction(self) -> float:
        """Sparsity of the matrix (fraction of non-zero coefficients)."""
        return float(np.mean(np.abs(self.matrix) > 1e-12))

    def cycles_per_output_sequential(self) -> list[int]:
        """Cycles a single-adder PE needs per output (tap-by-tap engine).

        One addition of a (possibly shifted) operand per cycle; the first
        operand only loads the accumulator, hence ``max(addends, 1)`` cycles.
        """
        return [max(row.addend_count(), 1) for row in self.rows]

    def total_sequential_cycles(self) -> int:
        return sum(self.cycles_per_output_sequential())

    def cse_adjusted_sequential_cycles(self) -> int:
        """Sequential cycles after reusing shared sub-expressions in time."""
        return max(self.total_sequential_cycles() - self.cse_savings, len(self.rows))

    # ------------------------------------------------------------------ #
    # Greedy pairwise CSE
    # ------------------------------------------------------------------ #
    def _greedy_cse_savings(self) -> int:
        """Count adders saved by sharing two-term sub-expressions.

        A classic greedy algorithm: every unordered pair of inputs that occurs
        with a consistent coefficient ratio in ``k`` outputs can be computed
        once and reused, saving ``k - 1`` additions.  This is a lower bound on
        what a full CSE pass could achieve but captures the bulk of the
        savings for the highly symmetric Winograd matrices.
        """
        pattern_counts: dict[tuple, int] = {}
        for row in self.rows:
            for pattern in row.pair_patterns():
                pattern_counts[pattern] = pattern_counts.get(pattern, 0) + 1
        savings = 0
        for count in pattern_counts.values():
            if count > 1:
                savings += count - 1
        # Each row can realistically reuse at most (addends - 1) adders, so the
        # greedy estimate is clamped to the no-CSE cost.
        return min(savings, self.adders_without_cse())


def transform_2d_cost(matrix: np.ndarray) -> dict[str, float]:
    """Cost summary of a full 2-D transform ``Tᵀ (s T)`` on an alpha×alpha tile.

    The 1-D transform ``s @ T`` is applied once per row and the second pass
    ``Tᵀ @ s'`` once per column, so every 1-D cost is multiplied by the number
    of rows/columns it is applied to.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    rows_out, cols_in = matrix.shape
    dfg = TransformDFG.from_matrix(matrix)
    one_d_adders = dfg.adders_with_cse()
    one_d_cycles = dfg.cse_adjusted_sequential_cycles()
    # First pass: applied to each of the `cols_in` rows of the input tile;
    # second pass: applied to each of the `rows_out` columns of the result.
    total_adders = one_d_adders * (cols_in + rows_out)
    total_cycles = one_d_cycles * (cols_in + rows_out)
    num_taps = rows_out * rows_out
    return {
        "one_d_adders": float(one_d_adders),
        "one_d_cycles": float(one_d_cycles),
        "total_adders": float(total_adders),
        "total_sequential_cycles": float(total_cycles),
        "cycles_per_tap": float(total_cycles) / float(num_taps),
        "nonzero_fraction": dfg.nonzero_fraction(),
        "shifters": float(dfg.shifters()),
    }
