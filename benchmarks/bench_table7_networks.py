"""Table VII — end-to-end throughput and energy efficiency on 7 CNNs."""

from repro.experiments import run_table7
from repro.utils import print_table


def test_table7_full_network_evaluation(run_once):
    result = run_once(run_table7)
    print_table(result.headers, result.rows,
                title="Table VII — full-network evaluation (im2col / F2 / F4)",
                digits=2)
    print(f"max F4 end-to-end speed-up: {result.metadata['max_f4_speedup']:.2f}x "
          f"(paper: 1.83x); max energy-efficiency gain: "
          f"{result.metadata['max_energy_gain']:.2f}x (paper: 1.85x)")
    rows = {(r["network"], r["batch"]): r for r in result.as_dicts()}
    # Network ordering: 3x3-heavy networks benefit most.
    assert rows[("unet", 1)]["f4_vs_im2col"] > rows[("resnet50", 1)]["f4_vs_im2col"]
    # Batch scaling: SSD 1.55x -> 1.83x in the paper.
    assert (rows[("ssd_vgg16", 8)]["f4_vs_im2col"]
            > rows[("ssd_vgg16", 1)]["f4_vs_im2col"])
    assert result.metadata["max_f4_speedup"] < 3.0
    assert result.metadata["max_energy_gain"] > 1.3
