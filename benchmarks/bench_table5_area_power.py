"""Table V — area and power breakdown of the AI core."""

from repro.experiments import run_table5
from repro.utils import print_table


def test_table5_area_power_breakdown(run_once):
    result = run_once(run_table5)
    print_table(result.headers, result.rows,
                title="Table V — AI core area/power breakdown", digits=3)
    print(f"Winograd engines area fraction: "
          f"{result.metadata['engine_area_fraction'] * 100:.1f}% (paper: 6.1%)")
    print(f"Winograd engines power vs Cube: "
          f"{result.metadata['engine_power_vs_cube'] * 100:.1f}% (paper: ~17%)")
    print(f"Compute TOp/s/W — im2col: {result.metadata['tops_per_watt_im2col']:.2f} "
          f"(paper 5.39), F4 equivalent: {result.metadata['tops_per_watt_f4']:.2f} "
          f"(paper 17.04 Cube-only)")
    assert 0.04 < result.metadata["engine_area_fraction"] < 0.08
    assert result.metadata["tops_per_watt_f4"] > result.metadata["tops_per_watt_im2col"]
