"""Table II — ablation of the tap-wise quantization training flow.

Runs the full configuration grid on the substituted (synthetic) task with the
fast study settings; see EXPERIMENTS.md for the paper-vs-measured discussion.
"""

from repro.experiments import StudySettings, run_table2
from repro.utils import print_table


def test_table2_ablation(run_once):
    result = run_once(run_table2, StudySettings.fast())
    print_table(result.headers, result.rows,
                title="Table II — tap-wise quantization ablation (substitute task)",
                digits=3)
    rows = {row[0]: row for row in result.rows}
    baseline = result.metadata["baseline_top1"]
    print(f"baseline top-1: {baseline:.3f}")
    # Shape checks mirroring the paper's conclusions.
    layerwise = rows["F4-int8-WA"][-2]
    tapwise = rows["F4-int8-WA+tap"][-2]
    assert tapwise >= layerwise
    assert rows["im2col-int8"][-2] >= baseline - 0.1
