"""Table VI — comparison with the 8-engine NVDLA system."""

from repro.experiments import run_table6
from repro.utils import print_table


def test_table6_nvdla_comparison(run_once):
    result = run_once(run_table6)
    print_table(result.headers, result.rows,
                title="Table VI — NVDLA (F2, FP16) vs ours (F4, int8)", digits=2)
    iso = result.column("nvdla_iso_speedup")
    ours_vs_nvdla = result.column("ours_vs_nvdla_iso")
    # The big layer turns memory-bound on NVDLA at iso bandwidth (paper: 0.72x).
    assert iso[2] == min(iso) and iso[2] < 1.3
    # Ours outperforms NVDLA by 1.5-3.3x at the same peak throughput/bandwidth.
    assert max(ours_vs_nvdla) > 2.5
    assert min(ours_vs_nvdla) > 1.2
