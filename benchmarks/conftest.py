"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints it
(use ``pytest benchmarks/ --benchmark-only -s`` to see the tables inline).
The printed output is also what EXPERIMENTS.md records.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                                  iterations=1, warmup_rounds=0)

    return runner
