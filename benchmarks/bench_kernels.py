"""Micro-benchmarks of the library's own computational kernels.

Not a paper table — these measure the Python/numpy implementation itself
(Winograd vs im2col forward, fake-quantization, integer path), which is useful
when using the library for algorithm prototyping.  Each kernel is benchmarked
under both registered kernel backends (``reference`` einsum/loops vs ``fast``
batched GEMMs); ``benchmarks/run_bench.py`` is the scripted version that
writes ``BENCH_kernels.json``.
"""

import numpy as np
import pytest

from repro.kernels import available_backends, use_backend
from repro.nn.functional import conv2d_numpy
from repro.quant import calibrate_tapwise_scales, integer_winograd_conv2d
from repro.winograd import winograd_conv2d, winograd_f2, winograd_f4

_RNG = np.random.default_rng(0)
_X = _RNG.normal(size=(4, 32, 32, 32))
_W = _RNG.normal(size=(32, 32, 3, 3))

BACKENDS = available_backends()


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_im2col_conv_forward(benchmark, backend):
    with use_backend(backend):
        out = benchmark(conv2d_numpy, _X, _W, None, 1, 1)
    assert out.shape == (4, 32, 32, 32)


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_winograd_f4_conv_forward(benchmark, backend):
    with use_backend(backend):
        out = benchmark(winograd_conv2d, _X, _W, winograd_f4(), None, 1)
    assert out.shape == (4, 32, 32, 32)


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_winograd_f2_conv_forward(benchmark, backend):
    with use_backend(backend):
        out = benchmark(winograd_conv2d, _X, _W, winograd_f2(), None, 1)
    assert out.shape == (4, 32, 32, 32)


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_integer_tapwise_winograd(benchmark, backend):
    with use_backend(backend):
        scales = calibrate_tapwise_scales(_X, _W, winograd_f4(), power_of_two=True)
        out = benchmark(integer_winograd_conv2d, _X, _W, winograd_f4(), scales)
    assert out.shape == (4, 32, 32, 32)
