"""Fig. 4 — quantization-error distributions per granularity."""

from repro.experiments import run_fig4
from repro.models.resnet_imagenet import resnet34_slim
from repro.utils import print_table


def test_fig4_quantization_error(run_once):
    result = run_once(run_fig4, resnet34_slim(), 8, 8)
    print_table(result.headers, result.rows,
                title="Fig. 4 — mean log2 relative quantization error", digits=2)
    print(f"tap-wise gain over layer-wise (Winograd domain): "
          f"{result.metadata['tapwise_gain_over_layerwise']:.2f}x "
          f"(paper: 2.3x)")
    rows = {(row[0], row[1]): row[2] for row in result.rows}
    assert rows[("winograd", "tap")] < rows[("winograd", "layer")]
    assert rows[("spatial", "channel")] <= rows[("spatial", "layer")] + 0.05
    assert result.metadata["tapwise_gain_over_layerwise"] > 1.5
