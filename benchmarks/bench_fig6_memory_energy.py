"""Fig. 6 — memory access counts and energy breakdown, F4 vs im2col."""

from repro.experiments import run_fig6
from repro.utils import print_table


def test_fig6_memory_and_energy(run_once):
    result = run_once(run_fig6, None, ("resnet34", "ssd_vgg16", "unet"), 1)
    print_table(result.headers, result.rows,
                title="Fig. 6 (left) — memory accesses of F4 normalised to im2col",
                digits=2)
    energy = result.metadata["energy_breakdown_vs_im2col"]
    print_table(["component", "energy vs im2col total"],
                [[k, v] for k, v in sorted(energy.items(), key=lambda kv: -kv[1])],
                title="Fig. 6 (right) — F4 energy breakdown (im2col total = 1.0)",
                digits=3)
    print(f"total energy ratio F4/im2col: {result.metadata['total_energy_ratio']:.2f} "
          f"(paper: < 0.5 for the Winograd layers)")
    ratios = {row[0]: (row[1], row[2]) for row in result.rows}
    assert ratios["L1_WT"][1] > 3.5          # 4x weight expansion into L1
    assert ratios["L0A"][1] < 0.5            # 2.25/9 lowering-volume reduction
    assert result.metadata["total_energy_ratio"] < 0.75
