"""Table III — comparison with SoA Winograd-aware quantization methods."""

from repro.experiments import StudySettings, run_table3
from repro.utils import print_table


def test_table3_soa_comparison(run_once):
    result = run_once(run_table3, StudySettings.fast())
    print_table(result.headers, result.rows,
                title="Table III — SoA Winograd quantization comparison "
                      "(re-implementable subset, substitute task)", digits=3)
    models = {row[0] for row in result.rows}
    assert models == {"resnet20", "vgg_nagadomi"}
    # Our tap-wise configurations never do worse than the single-scale static
    # Winograd-aware baseline on the same model.
    for model in models:
        rows = [r for r in result.as_dicts() if r["model"] == model]
        ours = max(r["top1"] for r in rows if "ours" in r["method"])
        static = max(r["top1"] for r in rows
                     if r["method"].startswith("Winograd-aware static"))
        assert ours >= static - 0.05
