"""Table IV — Winograd F4 vs im2col speed-up over the synthetic layer sweep."""

from repro.experiments import (TABLE4_CHANNELS, run_table4)
from repro.utils import print_table


def test_table4_throughput_sweep(run_once):
    result = run_once(run_table4)
    # Print as the paper's grid: one row per (batch, resolution), one column
    # per (Cin, Cout) pair.
    speedups = {(row[0], row[1], row[2], row[3]): row[4] for row in result.rows}
    headers = ["batch", "HW"] + [f"{cin}->{cout}" for cin, cout in TABLE4_CHANNELS]
    grid = []
    for batch in (1, 8):
        for resolution in (16, 32, 64, 128):
            grid.append([batch, resolution]
                        + [speedups[(batch, resolution, cin, cout)]
                           for cin, cout in TABLE4_CHANNELS])
    print_table(headers, grid, title="Table IV — F4 speed-up over im2col", digits=2)
    print(f"range: {result.metadata['min_speedup']:.2f}x .. "
          f"{result.metadata['max_speedup']:.2f}x (paper: 0.99x .. 3.42x)")
    assert 0.8 <= result.metadata["min_speedup"]
    assert result.metadata["max_speedup"] <= 4.0


def test_table4_f2_sweep(run_once):
    """Ablation: the same sweep with the F2 operator (2.25x MAC reduction)."""
    result = run_once(run_table4, None, "F2", (8,), (32, 128),
                      ((128, 128), (256, 256)))
    print_table(result.headers, result.rows, title="Table IV ablation — F2 operator",
                digits=2)
    assert result.metadata["max_speedup"] <= 2.3
