"""Fig. 1 — per-tap weight distribution in the Winograd domain."""

from repro.experiments import run_fig1
from repro.models.resnet_imagenet import resnet34_slim
from repro.utils import print_table


def test_fig1_weight_distribution(run_once):
    result = run_once(run_fig1, resnet34_slim())
    print_table(result.headers, result.rows, title="Fig. 1 — tap-wise dynamic range "
                "of G f G^T (ResNet-34-shaped network)", digits=4)
    spread = result.metadata["dynamic_range_spread_bits"]
    print(f"dynamic range spread across taps: {spread:.2f} bits "
          f"(paper: weights shifted by 2-10 bits across taps)")
    assert spread > 2.0
    assert len(result.rows) == 36
