"""Table I — transformation-engine performance/bandwidth + design-space sweep."""

from repro.experiments import engine_design_space, run_table1
from repro.utils import print_table


def test_table1_engine_characteristics(run_once):
    result = run_once(run_table1)
    print_table(result.headers, result.rows,
                title="Table I — Winograd transformation engines (per-PE)", digits=2)
    by_key = {(row[0], row[1]): row for row in result.rows}
    slow = by_key[("row-by-row slow", "BT (input)")]
    fast = by_key[("row-by-row fast", "BT (input)")]
    assert slow[2] == 12 and fast[2] == 6  # hT + wT vs hT cycles for F4


def test_table1_engine_design_space(run_once):
    result = run_once(engine_design_space)
    print_table(result.headers, result.rows,
                title="Engine design-space exploration (ablation)", digits=2)
    assert len(result.rows) == 27
