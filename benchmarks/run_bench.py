#!/usr/bin/env python
"""Kernel micro-benchmark harness: reference vs fast backend.

Runs the library's computational kernels (im2col convolution, Winograd
F2/F4 forward, Winograd-aware autograd step, integer tap-wise path) under
both registered kernel backends and writes ``BENCH_kernels.json`` with median
wall-clock times and speedup ratios, so the repo's performance trajectory is
tracked from PR to PR.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--output PATH]
        [--repeats N] [--warmup N]

The headline case (``winograd_f4_forward``, 4x32x32x32 input, 32 output
channels) is the acceptance benchmark: the ``fast`` backend must stay >= 2x
faster than ``reference``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.kernels import available_backends, use_backend  # noqa: E402
from repro.nn.functional import conv2d_numpy  # noqa: E402
from repro.nn.tensor import Tensor  # noqa: E402
from repro.quant import (calibrate_tapwise_scales,  # noqa: E402
                         integer_winograd_conv2d)
from repro.winograd import (winograd_conv2d, winograd_conv2d_tensor,  # noqa: E402
                            winograd_f2, winograd_f4)

# Acceptance workload: 4x32x32x32 input, 32 output channels, 3x3 kernels.
_RNG = np.random.default_rng(0)
X = _RNG.normal(size=(4, 32, 32, 32))
W = _RNG.normal(size=(32, 32, 3, 3))
GRAD = _RNG.normal(size=(4, 32, 32, 32))


def _timed_call(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _autograd_step():
    x = Tensor(X, requires_grad=True)
    w = Tensor(W, requires_grad=True)
    out = winograd_conv2d_tensor(x, w, winograd_f4(), padding=1)
    out.backward(GRAD)


def _integer_case():
    scales = calibrate_tapwise_scales(X, W, winograd_f4(), power_of_two=True)

    def run():
        integer_winograd_conv2d(X, W, winograd_f4(), scales)

    return run


CASES = {
    "im2col_forward": lambda: conv2d_numpy(X, W, None, 1, 1),
    "winograd_f2_forward": lambda: winograd_conv2d(X, W, winograd_f2(), None, 1),
    "winograd_f4_forward": lambda: winograd_conv2d(X, W, winograd_f4(), None, 1),
    "winograd_f4_autograd_fwd_bwd": _autograd_step,
    "integer_tapwise_f4": _integer_case(),
}


def run_benchmarks(repeats: int, warmup: int) -> dict:
    backends = available_backends()
    results = {}
    for case_name, fn in CASES.items():
        times = {name: [] for name in backends}
        for name in backends:
            with use_backend(name):
                for _ in range(warmup):
                    fn()
        # Interleave the backends round by round so that bursts of external
        # CPU contention (shared machines) hit both measurements equally; the
        # speedup is then the median of the *per-round paired* ratios, which
        # is robust to load shifting between rounds.
        for _ in range(repeats):
            for name in backends:
                with use_backend(name):
                    times[name].append(_timed_call(fn))
        case = {f"{name}_s": float(statistics.median(ts))
                for name, ts in times.items()}
        if "reference_s" in case and "fast_s" in case and case["fast_s"] > 0:
            ratios = [ref_t / fast_t for ref_t, fast_t
                      in zip(times["reference"], times["fast"]) if fast_t > 0]
            case["speedup_fast_vs_reference"] = float(statistics.median(ratios))
        results[case_name] = case
        print(f"{case_name:32s} " + "  ".join(
            f"{k}={v:.6f}" if k.endswith("_s") else f"{k}={v:.2f}x"
            for k, v in case.items()))
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--output", default=os.path.join(os.path.dirname(_HERE),
                                                         "BENCH_kernels.json"))
    parser.add_argument("--repeats", type=int, default=15)
    parser.add_argument("--warmup", type=int, default=2)
    args = parser.parse_args(argv)

    results = run_benchmarks(args.repeats, args.warmup)
    payload = {
        "meta": {
            "workload": {"input": list(X.shape), "weight": list(W.shape),
                         "padding": 1},
            "repeats": args.repeats,
            "warmup": args.warmup,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "results": results,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")

    headline = results.get("winograd_f4_forward", {})
    speedup = headline.get("speedup_fast_vs_reference", 0.0)
    print(f"headline winograd_f4_forward speedup: {speedup:.2f}x (target >= 2x)")
    return 0 if speedup >= 2.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
