#!/usr/bin/env python
"""Kernel micro-benchmark harness: reference vs fast backend, planned vs eager.

Runs the library's computational kernels (im2col convolution, Winograd
F2/F4 forward, Winograd-aware autograd step, integer tap-wise path) under
both registered kernel backends, plus the execution-plan layer's planned
executor against the eager composed path, and writes ``BENCH_kernels.json``
with median wall-clock times and speedup ratios, so the repo's performance
trajectory is tracked from PR to PR.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--output PATH]
        [--serve-output PATH] [--repeats N] [--warmup N] [--smoke] [--check]
        [--trace DIR]

Acceptance numbers (same 4x32x32x32 input, 32 output channels, F4):

* ``winograd_f4_forward``: the ``fast`` backend must stay >= 2x faster than
  ``reference``.
* ``planned_f4_forward``: the planned executor (bound CompiledConv streaming
  repeated same-shape batches through a cached LayerPlan) must be >= 1.3x
  faster than the eager composed tensor path — the per-stage autograd graph
  every forward used before :mod:`repro.engine` existed, and which the
  quantization-hook layers still run.  Both measurements are interleaved
  round by round (paired ratios) for robustness on loaded machines.

Serving-layer numbers (PR 5, written to ``BENCH_serve.json``):

* ``served_model_f4``: steady-state ``CompiledModel`` inference (BN folded,
  ReLU fused, plan-keyed workspace arena) must be >= 1.2x over the same
  network run as per-layer CompiledConv + BN + ReLU steps.
* ``shm_pool_batch{4,8}``: the persistent shared-memory worker pool must
  beat the pickle ``multiprocessing.Pool`` transport at batch <= 8.
* ``shm_pool_supervision_overhead`` (PR 6): the supervised pool (heartbeats,
  sentinel watching, retry bookkeeping) must stay within 5% of the same pool
  with supervision disabled (``heartbeat_interval=None``, the bare PR 5
  wire) — fault tolerance must not tax the fast path.

Autotuned-tier numbers (PR 7, paired round by round against ``fast``):

* ``tuned_f2_forward`` / ``tuned_f4_forward`` / ``tuned_f4_fused_autograd``
  — the ``tuned`` backend after a full in-process tuning pass must be >= 1x
  the untuned ``fast`` backend on every case, and >= 1.15x on at least one
  Winograd forward case.
* ``tuned_served_model`` (``BENCH_serve.json``) — a deep-layer conv stack
  compiled with ``compile_model(..., autotune="full")`` against the same
  stack pinned to the untuned ``fast`` backend.

Codegen-tier numbers (PR 9, paired round by round against ``fast``):

* ``compiled_f2_forward`` / ``compiled_f4_forward`` /
  ``compiled_f4_fused_autograd`` — the tuned tier with shape-specialized
  generated kernels registered as candidates (``REPRO_CODEGEN`` on), after
  a full tuning pass, vs untuned ``fast``.
* ``compiled_im2col_gemm`` — the other side of arbitration: the tuned
  tier's *arbitrated* GEMM choice (BLAS keeps the crown at this geometry)
  vs the generated GEMM kernel forced.  The ratio is how much the
  autotuner saved by declining codegen where it loses.
  All four must be >= 1.0x (arbitration never loses) and >= 1.25x on at
  least one (codegen actually wins somewhere).  Each case records which
  candidate the tuner bound; skipped entirely when codegen is unavailable.

Training-layer numbers (PR 8, written to ``BENCH_train.json``):

* ``dp_train_step_scaling`` — one :class:`repro.train.DataParallelTrainer`
  gradient step (4 supervised shm workers) vs the identical single-process
  step; must be >= 1.5x on machines with >= 4 cores (``cpu_cores`` is
  recorded alongside the ratio).
* ``dp_train_supervision_overhead`` — the supervised 4-worker sharded step
  vs the same pool with supervision off; must stay <= 1.05x everywhere.

Observability numbers (PR 10, written to ``BENCH_serve.json``):

* ``obs_overhead_serve`` — steady-state ``CompiledModel`` inference with
  ``repro.obs`` fully on (span tracing + per-plan kernel profiling) vs the
  same model with observability off; must stay <= 1.05x — tracing a healthy
  server may not tax it.

``--trace DIR`` turns observability on for the whole run and writes one
Chrome-trace JSON file per benchmark case into ``DIR`` (load them in
Perfetto / ``chrome://tracing``).  The committed BENCH json files are
generated *without* ``--trace`` so the published numbers stay untraced;
the ``meta.obs`` block records which mode produced a given file.

``--smoke`` runs everything with tiny repeat counts and exits 0 regardless
of the measured ratios — the CI plumbing check, not a perf gate.

``--check`` compares a fresh run against the *committed* BENCH json files
instead of overwriting them: any ``speedup_*`` ratio that drops more than
15% below its committed value (or ``overhead_*`` ratio that rises more than
15% above) fails the run.  This is the CI regression gate; combined with
``--smoke`` it still exits 0.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import statistics
import sys
import tempfile
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.kernels import available_backends, use_backend  # noqa: E402
from repro.nn.functional import conv2d_numpy  # noqa: E402
from repro.nn.tensor import Tensor  # noqa: E402
from repro.quant import (calibrate_tapwise_scales,  # noqa: E402
                         integer_winograd_conv2d)
from repro.winograd import (winograd_conv2d, winograd_conv2d_tensor,  # noqa: E402
                            winograd_f2, winograd_f4)

# Acceptance workload: 4x32x32x32 input, 32 output channels, 3x3 kernels.
_RNG = np.random.default_rng(0)
X = _RNG.normal(size=(4, 32, 32, 32))
W = _RNG.normal(size=(32, 32, 3, 3))
GRAD = _RNG.normal(size=(4, 32, 32, 32))


def _timed_call(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _autograd_step():
    x = Tensor(X, requires_grad=True)
    w = Tensor(W, requires_grad=True)
    out = winograd_conv2d_tensor(x, w, winograd_f4(), padding=1)
    out.backward(GRAD)


def _integer_case():
    scales = calibrate_tapwise_scales(X, W, winograd_f4(), power_of_two=True)

    def run():
        integer_winograd_conv2d(X, W, winograd_f4(), scales)

    return run


CASES = {
    "im2col_forward": lambda: conv2d_numpy(X, W, None, 1, 1),
    "winograd_f2_forward": lambda: winograd_conv2d(X, W, winograd_f2(), None, 1),
    "winograd_f4_forward": lambda: winograd_conv2d(X, W, winograd_f4(), None, 1),
    "winograd_f4_autograd_fwd_bwd": _autograd_step,
    "integer_tapwise_f4": _integer_case(),
}


# --------------------------------------------------------------------------- #
# Planned executor vs eager composed path
# --------------------------------------------------------------------------- #
def _identity(t):
    return t


def planned_vs_eager_cases(repeats: int, warmup: int) -> dict:
    """Paired-round medians of the planned executor against the eager path.

    * ``planned_f4_forward`` — a :class:`repro.engine.CompiledConv` (weights
      pre-transformed once, plan interned in the shared cache) streaming the
      acceptance workload, vs the composed tensor forward (an identity hook
      forces the per-stage graph, i.e. the pre-engine behaviour and today's
      quantization-hook path).
    * ``planned_f4_fused_autograd`` — the engine's fused single-node
      forward+backward vs the composed five-node graph's forward+backward.
    """
    from repro.engine import CompiledConv, clear_plan_cache

    clear_plan_cache()
    compiled = CompiledConv(W, padding=1, transform="F4")

    def planned_forward():
        compiled(X)

    def eager_forward():
        winograd_conv2d_tensor(Tensor(X), Tensor(W), winograd_f4(), padding=1,
                               input_tile_hook=_identity)

    def planned_autograd():
        x = Tensor(X, requires_grad=True)
        w = Tensor(W, requires_grad=True)
        out = winograd_conv2d_tensor(x, w, winograd_f4(), padding=1)
        out.backward(GRAD)

    def eager_autograd():
        x = Tensor(X, requires_grad=True)
        w = Tensor(W, requires_grad=True)
        out = winograd_conv2d_tensor(x, w, winograd_f4(), padding=1,
                                     input_tile_hook=_identity)
        out.backward(GRAD)

    results = {}
    pairs = {
        "planned_f4_forward": (planned_forward, eager_forward),
        "planned_f4_fused_autograd": (planned_autograd, eager_autograd),
    }
    for case_name, (planned_fn, eager_fn) in pairs.items():
        for _ in range(warmup):
            planned_fn()
            eager_fn()
        planned_times, eager_times = [], []
        # Interleaved rounds, same methodology as run_benchmarks.
        for _ in range(repeats):
            planned_times.append(_timed_call(planned_fn))
            eager_times.append(_timed_call(eager_fn))
        ratios = [e / p for p, e in zip(planned_times, eager_times) if p > 0]
        case = {
            "planned_s": float(statistics.median(planned_times)),
            "eager_s": float(statistics.median(eager_times)),
            "speedup_planned_vs_eager": float(statistics.median(ratios)),
        }
        results[case_name] = case
        print(f"{case_name:32s} " + "  ".join(
            f"{k}={v:.6f}" if k.endswith("_s") else f"{k}={v:.2f}x"
            for k, v in case.items()))
        _maybe_trace(case_name)
    return results


# --------------------------------------------------------------------------- #
# Autotuned tier (PR 7): tuned backend vs untuned fast, after a tuning pass
# --------------------------------------------------------------------------- #
def tuned_vs_fast_cases(repeats: int, warmup: int) -> dict:
    """Paired-round medians of the ``tuned`` backend against untuned ``fast``.

    Each tuned measurement runs one full-mode tuning pass first (every
    primitive key of the workload benchmarked and bound to its winner, the
    winners persisted to the shared plan cache), then streams the workload
    through the bound choices — the steady state a tuned deployment sees.
    The fast side is the same plan executed with the untuned defaults.

    The forward workloads use deep-layer geometry — 64 channels on small
    feature maps (the 14x14/16x16 stages of a deep network) — where the
    fixed strategy costs `fast` the most: with only a handful of tile rows
    per image, its per-image 144KB-blocked loop degenerates into many tiny
    GEMM chains, and the tuner's whole-batch tile ordering or 4-8x larger
    blocks win outright.  The autograd workload keeps 64 channels at 32x32,
    where one row of F4 tiles already fills the 144KB working-set target
    (one Python-level block iteration per tile row untuned).

    Codegen is disabled for these tuning passes: the ``tuned_*`` cases track
    the PR 7 numpy-variant arbitration; the codegen candidates get their own
    paired cases in :func:`compiled_vs_fast_cases`.
    """
    from repro.engine import CompiledConv, autotune, clear_plan_cache

    w64 = _RNG.normal(size=(64, 64, 3, 3))
    x_ag = _RNG.normal(size=(4, 64, 32, 32))
    grad64 = _RNG.normal(size=(4, 64, 32, 32))

    clear_plan_cache()
    results = {}
    pairs = {}
    for case_name, tname, x in (
            ("tuned_f2_forward", "F2", _RNG.normal(size=(8, 64, 14, 14))),
            ("tuned_f4_forward", "F4", _RNG.normal(size=(8, 64, 16, 16)))):
        tuned_conv = CompiledConv(w64, padding=1, transform=tname,
                                  backend="tuned")
        fast_conv = CompiledConv(w64, padding=1, transform=tname,
                                 backend="fast")
        with _env("REPRO_CODEGEN", "off"), autotune.use_mode("full"):
            tuned_conv(x)
        pairs[case_name] = (lambda c=tuned_conv, x=x: c(x),
                            lambda c=fast_conv, x=x: c(x))

    def tuned_autograd():
        x = Tensor(x_ag, requires_grad=True)
        w = Tensor(w64, requires_grad=True)
        out = winograd_conv2d_tensor(x, w, winograd_f4(), padding=1,
                                     backend="tuned")
        out.backward(grad64)

    def fast_autograd():
        x = Tensor(x_ag, requires_grad=True)
        w = Tensor(w64, requires_grad=True)
        out = winograd_conv2d_tensor(x, w, winograd_f4(), padding=1,
                                     backend="fast")
        out.backward(grad64)

    with _env("REPRO_CODEGEN", "off"), autotune.use_mode("full"):
        tuned_autograd()
    pairs["tuned_f4_fused_autograd"] = (tuned_autograd, fast_autograd)

    for case_name, (tuned_fn, fast_fn) in pairs.items():
        case = _paired_case(tuned_fn, fast_fn, repeats, warmup,
                            "tuned_s", "fast_s", "speedup_tuned_vs_fast")
        results[case_name] = case
        _print_case(case_name, case)
    return results


@contextlib.contextmanager
def _env(var: str, value: str | None):
    """Temporarily set (or unset, with None) one environment variable."""
    old = os.environ.get(var)
    if value is None:
        os.environ.pop(var, None)
    else:
        os.environ[var] = value
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = old


def compiled_vs_fast_cases(repeats: int, warmup: int) -> dict:
    """Paired floors of the tuned tier *with codegen candidates* in the ring.

    The PR 9 acceptance cases: each workload gets a full-mode tuning pass in
    which the shape-specialized generated kernels compete against the blocked
    numpy variants (the generated kernel is built — or loaded from the object
    store — before the benchmark rounds), then the workload streams through
    the bound winner.  Where codegen wins (the fused Winograd forward and
    autograd at deep-layer geometry) the tuned tier is paired against
    untuned ``fast`` and the measured ratio is the codegen kernel's.  Where
    BLAS wins (the im2col GEMM) the arbitrated choice is paired against the
    generated GEMM *forced*, so the ratio measures what arbitration saved
    by declining codegen — comparing two genuinely different kernels
    instead of gating a parity measurement on timer noise.  Each case
    records the winning choice it bound.

    Runs against a private plan-cache directory so the codegen-free winners
    the ``tuned_*`` cases just persisted don't shadow this tuning pass, and
    restores the ambient autotune state afterwards.
    """
    from repro.engine import CompiledConv, autotune, clear_plan_cache
    from repro.kernels import codegen
    from repro.kernels import tuned as tuned_mod

    case_names = ("compiled_f2_forward", "compiled_f4_forward",
                  "compiled_f4_fused_autograd", "compiled_im2col_gemm")
    if not codegen.available():
        print("compiled_vs_fast cases skipped: codegen unavailable "
              "(REPRO_CODEGEN=off or no toolchain)")
        return {name: {"skipped": "codegen unavailable"}
                for name in case_names}

    w64 = _RNG.normal(size=(64, 64, 3, 3))
    x_ag = _RNG.normal(size=(4, 64, 32, 32))
    grad64 = _RNG.normal(size=(4, 64, 32, 32))

    results = {}
    plan_dir = tempfile.mkdtemp(prefix="repro-bench-compiled-plans-")
    with _env(autotune.ENV_CACHE_DIR, plan_dir):
        autotune.reset_state()
        clear_plan_cache()
        pairs = {}
        chosen = {}
        for case_name, tname, x in (
                ("compiled_f2_forward", "F2",
                 _RNG.normal(size=(8, 64, 14, 14))),
                ("compiled_f4_forward", "F4",
                 _RNG.normal(size=(8, 64, 16, 16)))):
            tuned_conv = CompiledConv(w64, padding=1, transform=tname,
                                      backend="tuned")
            fast_conv = CompiledConv(w64, padding=1, transform=tname,
                                     backend="fast")
            with autotune.use_mode("full"):
                tuned_conv(x)
            xp_shape = (x.shape[0], x.shape[1],
                        x.shape[2] + 2, x.shape[3] + 2)
            chosen[case_name] = autotune.lookup(
                tuned_mod._forward_key(xp_shape, 64, tname, x.dtype))
            pairs[case_name] = (lambda c=tuned_conv, x=x: c(x),
                                lambda c=fast_conv, x=x: c(x))

        def tuned_autograd():
            x = Tensor(x_ag, requires_grad=True)
            w = Tensor(w64, requires_grad=True)
            out = winograd_conv2d_tensor(x, w, winograd_f4(), padding=1,
                                         backend="tuned")
            out.backward(grad64)

        def fast_autograd():
            x = Tensor(x_ag, requires_grad=True)
            w = Tensor(w64, requires_grad=True)
            out = winograd_conv2d_tensor(x, w, winograd_f4(), padding=1,
                                         backend="fast")
            out.backward(grad64)

        with autotune.use_mode("full"):
            tuned_autograd()
        xp_ag = (x_ag.shape[0], x_ag.shape[1],
                 x_ag.shape[2] + 2, x_ag.shape[3] + 2)
        chosen["compiled_f4_fused_autograd"] = autotune.lookup(
            tuned_mod._autograd_key(xp_ag, w64.shape, "F4", x_ag.dtype))
        pairs["compiled_f4_fused_autograd"] = (tuned_autograd, fast_autograd)

        # im2col GEMM at the same deep-layer 64-channel geometry: the one
        # case where BLAS keeps the crown.  Tune with the generated GEMM in
        # the ring, then pair the arbitrated choice against that generated
        # kernel *forced* — the ratio is what arbitration saved by saying no.
        from repro.kernels import compiled as compiled_mod
        from repro.kernels import fast as fast_mod

        x_gemm = _RNG.normal(size=(8, 64, 14, 14))
        gemm_tuned = CompiledConv(w64, padding=1, transform=None,
                                  backend="tuned")
        with autotune.use_mode("full"):
            gemm_tuned(x_gemm)
        w2d = np.ascontiguousarray(w64.reshape(64, -1))
        cols = fast_mod.im2col(x_gemm, (3, 3), padding=1)
        k = w64.shape[1] * 9
        p = x_gemm.shape[2] * x_gemm.shape[3]
        chosen["compiled_im2col_gemm"] = autotune.lookup(
            f"conv2d_gemm|w={(64, k)}|cols={(x_gemm.shape[0], k, p)}"
            f"|dt={x_gemm.dtype}")
        if compiled_mod.prepare_gemm(w2d, cols):
            pairs["compiled_im2col_gemm"] = (
                lambda: tuned_mod.conv2d_gemm(w2d, cols),
                lambda: compiled_mod.try_gemm(w2d, cols))
        else:
            results["compiled_im2col_gemm"] = {
                "skipped": "codegen gemm build unavailable"}
            print("compiled_im2col_gemm skipped: codegen gemm build "
                  "unavailable")

        for case_name, (tuned_fn, other_fn) in pairs.items():
            if case_name == "compiled_im2col_gemm":
                keys = ("tuned_s", "codegen_s", "speedup_arbitrated_vs_codegen")
            else:
                keys = ("tuned_s", "fast_s", "speedup_compiled_vs_fast")
            case = _paired_case(tuned_fn, other_fn, repeats, warmup, *keys,
                                ratio_stat="floor")
            case["chosen"] = json.dumps(chosen.get(case_name))
            results[case_name] = case
            _print_case(case_name, case)
    # Back to the ambient plan cache for the serve/train sections.
    autotune.reset_state()
    clear_plan_cache()
    return results


# --------------------------------------------------------------------------- #
# Serving layer (repro.serve): compiled models and the shm worker pool
# --------------------------------------------------------------------------- #
def _paired_case(fast_fn, slow_fn, repeats: int, warmup: int,
                 fast_key: str, slow_key: str, ratio_key: str,
                 ratio_stat: str = "median") -> dict:
    """Interleaved paired rounds (same methodology as run_benchmarks).

    ``ratio_stat="median"`` reports the median of per-round ratios — the
    expected-latency comparison used by most cases.  ``ratio_stat="floor"``
    reports best-round / best-round instead: the right estimator when the
    gated property is *selection* rather than latency (the ``compiled_*``
    cases gate "arbitration never loses") — the autotuner binds on best
    observed time, so the gate should compare each kernel at its best
    rather than inherit per-round scheduler noise through a median.
    """
    for _ in range(warmup):
        fast_fn()
        slow_fn()
    fast_times, slow_times = [], []
    for _ in range(repeats):
        fast_times.append(_timed_call(fast_fn))
        slow_times.append(_timed_call(slow_fn))
    if ratio_stat == "floor":
        ratio = min(slow_times) / min(fast_times)
    else:
        ratio = statistics.median(
            s / f for f, s in zip(fast_times, slow_times) if f > 0)
    return {
        fast_key: float(statistics.median(fast_times)),
        slow_key: float(statistics.median(slow_times)),
        ratio_key: float(ratio),
    }


# Set by main() when --trace DIR is given; every finished case then flushes
# the span buffer into its own Chrome-trace file.
_TRACE_DIR: str | None = None


def _maybe_trace(name: str) -> None:
    """Flush the span buffer accumulated by one case into DIR/<name>.json."""
    if _TRACE_DIR is None:
        return
    from repro.obs import trace as _obs_trace
    _obs_trace.export(os.path.join(_TRACE_DIR, f"{name}.json"), clear=True)


def _print_case(name: str, case: dict) -> None:
    print(f"{name:32s} " + "  ".join(
        f"{k}={v:.6f}" if k.endswith("_s") else
        (f"{k}={v:.2f}x" if isinstance(v, float) else f"{k}={v}")
        for k, v in case.items()))
    _maybe_trace(name)


def _bind_per_layer_compiledconv(model) -> None:
    """Replace every conv module's forward with a bound CompiledConv call.

    This reconstructs the *pre-serve* way to serve a model: each convolution
    goes through its own weight-bound :class:`repro.engine.CompiledConv`
    (plans cached, weights pre-transformed), while BatchNorm / ReLU / pooling
    / linear layers still execute through the eager module graph.
    """
    from repro.engine import CompiledConv
    from repro.nn.layers import Conv2d

    for module in model.modules():
        if isinstance(module, Conv2d):
            transform = ("F4" if module.kernel_size == 3 and module.stride == 1
                         else None)
            compiled = CompiledConv(
                module.weight.data,
                None if module.bias is None else module.bias.data,
                stride=module.stride, padding=module.padding,
                transform=transform)

            def forward(x, _cc=compiled):
                return Tensor(_cc(x.data))

            module.forward = forward


def serve_cases(repeats: int, warmup: int) -> dict:
    """Benchmarks of the serving layer (PR 5), paired round by round.

    * ``served_model_f4`` — a fully-optimised CompiledModel (BN folding,
      ReLU fusion, workspace arena, bound weights) against the same network
      served as **per-layer CompiledConv calls** (bound convolutions inside
      the eager module graph — the pre-serve serving strategy).  The
      ``per_layer_steps_s`` column is a tougher strawman: the same unfused
      per-layer pipeline but with all the elementwise ops already in plain
      numpy (``fold_bn=False, fuse_relu=False, use_arena=False``).
    * ``shm_pool_batch{4,8}`` — BatchRunner's two transports head to head on
      one bound F4 layer, persistent pools, same chunking.
    """
    from repro.engine import ConvJob, clear_plan_cache
    from repro.models.resnet_cifar import resnet_tiny
    from repro.nn.tensor import no_grad
    from repro.serve import ShmWorkerPool, compile_model

    results = {}
    clear_plan_cache()

    # -- CompiledModel vs per-layer CompiledConv ---------------------------- #
    model = resnet_tiny(seed=0)
    model.eval()
    batch = _RNG.normal(size=(8, 3, 32, 32))
    served = compile_model(model, (8, 3, 32, 32))
    steps_baseline = compile_model(model, (8, 3, 32, 32), fold_bn=False,
                                   fuse_relu=False, use_arena=False)
    per_layer_model = resnet_tiny(seed=0)        # same weights (same seed)
    per_layer_model.eval()
    _bind_per_layer_compiledconv(per_layer_model)

    def run_per_layer():
        with no_grad():
            per_layer_model(Tensor(batch))

    case = _paired_case(lambda: served.infer(batch), run_per_layer,
                        repeats, warmup, "served_s", "per_layer_s",
                        "speedup_served_vs_per_layer")
    steps_case = _paired_case(lambda: served.infer(batch),
                              lambda: steps_baseline.infer(batch),
                              repeats, warmup, "served_s", "per_layer_steps_s",
                              "speedup_served_vs_steps")
    case["per_layer_steps_s"] = steps_case["per_layer_steps_s"]
    case["speedup_served_vs_steps"] = steps_case["speedup_served_vs_steps"]
    results["served_model_f4"] = case
    _print_case("served_model_f4", case)

    # -- observability overhead (PR 10) ------------------------------------- #
    # The same steady-state CompiledModel with repro.obs fully on (span
    # tracing into the ring buffer + per-plan kernel profiling through the
    # wrapped backends) against itself with observability off.  Gated
    # <= 1.05x like supervision: tracing a healthy server may not tax it.
    from repro import obs

    def run_without_obs():
        # Explicitly off (not "whatever the global state is") so the baseline
        # stays honest when the whole run is traced via --trace; both sides
        # pay the same scope-toggle cost.
        with obs.enabled_scope(False):
            served.infer(batch)

    def run_with_obs():
        with obs.enabled_scope():
            served.infer(batch)

    case = _paired_case(run_without_obs, run_with_obs,
                        repeats, warmup, "off_s", "obs_s",
                        "overhead_obs_vs_off")
    results["obs_overhead_serve"] = case
    _print_case("obs_overhead_serve", case)

    # -- tuned-backend served model (PR 7) ---------------------------------- #
    # A deep-layer conv stack (64 channels at 16x16 — the geometry of a deep
    # network's middle stages, where the tuner's choices actually differ from
    # fast's fixed strategy) compiled with a full autotuning pass folded into
    # the warmup trace, against the same stack pinned to untuned ``fast``.
    # resnet_tiny's 8-32 channel layers are too small for tuning to matter;
    # they stay the fault-tolerance/serving workload above.
    from repro.nn.layers import Conv2d
    from repro.nn.module import Sequential
    deep_rng = np.random.default_rng(5)
    deep_model = Sequential(*[Conv2d(64, 64, 3, padding=1, rng=deep_rng)
                              for _ in range(3)])
    deep_model.eval()
    deep_batch = _RNG.normal(size=(8, 64, 16, 16))
    tuned_served = compile_model(deep_model, (8, 64, 16, 16), autotune="full")
    clear_plan_cache()        # the fast twin must not reuse tuned-keyed plans
    fast_served = compile_model(deep_model, (8, 64, 16, 16), backend="fast")
    case = _paired_case(lambda: tuned_served.infer(deep_batch),
                        lambda: fast_served.infer(deep_batch),
                        repeats, warmup, "tuned_s", "fast_s",
                        "speedup_tuned_vs_fast")
    results["tuned_served_model"] = case
    _print_case("tuned_served_model", case)

    # -- shm pool vs pickle BatchRunner ------------------------------------- #
    job = ConvJob(weight=W, padding=1, transform="F4")
    try:
        shm_pool = ShmWorkerPool(job, num_workers=2)
    except Exception as exc:  # pragma: no cover - sandboxed environments
        results["shm_pool"] = {"skipped": f"{type(exc).__name__}: {exc}"}
        print(f"shm pool benchmark skipped: {exc}")
        return results
    from repro.engine.runner import _init_worker, _pick_context, _run_chunk
    ctx = _pick_context(None)
    pickle_pool = ctx.Pool(2, initializer=_init_worker, initargs=(job,))
    try:
        for n in (4, 8):
            x = _RNG.normal(size=(n, 32, 32, 32))
            chunk = -(-n // 2)
            chunks = [x[i:i + chunk] for i in range(0, n, chunk)]

            def run_shm():
                shm_pool.run(x, chunk_size=chunk)

            def run_pickle():
                np.concatenate(pickle_pool.map(_run_chunk, chunks), axis=0)

            case = _paired_case(run_shm, run_pickle, repeats, warmup,
                                "shm_s", "pickle_s",
                                "speedup_shm_vs_pickle")
            results[f"shm_pool_batch{n}"] = case
            _print_case(f"shm_pool_batch{n}", case)

        # -- supervision overhead (PR 6) -------------------------------- #
        # The default pool above runs fully supervised (heartbeats, sentinel
        # watching, retry bookkeeping); pair it against the same pool with
        # supervision switched off to isolate what fault tolerance costs on
        # the fault-free fast path.
        bare_pool = ShmWorkerPool(job, num_workers=2, heartbeat_interval=None)
        try:
            x = _RNG.normal(size=(8, 32, 32, 32))
            case = _paired_case(lambda: bare_pool.run(x, chunk_size=4),
                                lambda: shm_pool.run(x, chunk_size=4),
                                repeats, warmup, "bare_s", "supervised_s",
                                "overhead_supervised_vs_bare")
            results["shm_pool_supervision_overhead"] = case
            _print_case("shm_pool_supervision_overhead", case)
        finally:
            bare_pool.close()
    finally:
        shm_pool.close()
        pickle_pool.close()
        pickle_pool.join()
    return results


# --------------------------------------------------------------------------- #
# Training layer (repro.train): data-parallel gradient steps (PR 8)
# --------------------------------------------------------------------------- #
def train_cases(repeats: int, warmup: int) -> dict:
    """Benchmarks of data-parallel training (PR 8), paired round by round.

    * ``dp_train_step_scaling`` — one sharded gradient step of
      :class:`repro.train.DataParallelTrainer` (4 supervised shm workers,
      forward+backward in the workers, host-side accumulation) against the
      identical single-process step.  The >= 1.5x acceptance target applies
      on machines with >= 4 cores; ``cpu_cores`` is recorded so the measured
      ratio is auditable in context (a 1-core container *cannot* show
      parallel speedup — the workers time-slice one core and the ratio
      honestly reads the sharding overhead instead).
    * ``dp_train_supervision_overhead`` — the same 4-worker sharded step with
      full supervision (heartbeats, sentinel watching, retry bookkeeping)
      against the pool with supervision off (``heartbeat_interval=None``).
      Must stay <= 1.05x everywhere: fault tolerance may not tax training.
    """
    from repro.datasets.synthetic import make_shapes_dataset
    from repro.models.small import TinyConvNet
    from repro.nn.data import ArrayDataset, DataLoader
    from repro.nn.optim import SGD
    from repro.train import DataParallelTrainer, Trainer
    from repro.utils import seed_everything

    num_workers = 4
    raw = make_shapes_dataset(num_samples=64, num_classes=10, size=32, seed=0)
    images, labels = raw.images[:16], raw.labels[:16]

    def build(workers: int, **kwargs):
        seed_everything(0)
        model = TinyConvNet(num_classes=10, seed=0)
        loader = DataLoader(ArrayDataset(raw.images, raw.labels),
                            batch_size=16, shuffle=True, seed=0)
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
        if workers:
            return DataParallelTrainer(model, optimizer, loader,
                                       num_workers=workers, **kwargs)
        return Trainer(model, optimizer, loader, **kwargs)

    results = {}
    single = build(0)
    supervised = build(num_workers)
    bare = build(num_workers, heartbeat_interval=None)
    if supervised.degraded or bare.degraded:  # pragma: no cover - sandboxes
        supervised.close()
        bare.close()
        results["dp_train"] = {"skipped": "worker pool unavailable"}
        print("dp train benchmark skipped: worker pool unavailable")
        return results
    try:
        case = _paired_case(lambda: supervised._compute_step(images, labels),
                            lambda: single._compute_step(images, labels),
                            repeats, warmup, "dp4_s", "single_s",
                            "speedup_dp4_vs_single")
        case["cpu_cores"] = int(os.cpu_count() or 1)
        case["num_workers"] = num_workers
        results["dp_train_step_scaling"] = case
        _print_case("dp_train_step_scaling", case)

        case = _paired_case(lambda: bare._compute_step(images, labels),
                            lambda: supervised._compute_step(images, labels),
                            repeats, warmup, "bare_s", "supervised_s",
                            "overhead_supervised_vs_bare")
        results["dp_train_supervision_overhead"] = case
        _print_case("dp_train_supervision_overhead", case)
    finally:
        supervised.close()
        bare.close()
    return results


def run_benchmarks(repeats: int, warmup: int) -> dict:
    # The generic per-backend sweep covers the untuned tiers only: switching
    # the process-wide backend every round fires the plan-cache eviction
    # listeners, which would charge cache-rebuild churn (and tuning-store
    # invalidation) to the tuned tier.  The tuned backend is measured by the
    # dedicated paired cases in :func:`tuned_vs_fast_cases` instead.
    backends = [b for b in ("reference", "fast") if b in available_backends()]
    results = {}
    for case_name, fn in CASES.items():
        times = {name: [] for name in backends}
        for name in backends:
            with use_backend(name):
                for _ in range(warmup):
                    fn()
        # Interleave the backends round by round so that bursts of external
        # CPU contention (shared machines) hit both measurements equally; the
        # speedup is then the median of the *per-round paired* ratios, which
        # is robust to load shifting between rounds.
        for _ in range(repeats):
            for name in backends:
                with use_backend(name):
                    times[name].append(_timed_call(fn))
        case = {f"{name}_s": float(statistics.median(ts))
                for name, ts in times.items()}
        if "reference_s" in case and "fast_s" in case and case["fast_s"] > 0:
            ratios = [ref_t / fast_t for ref_t, fast_t
                      in zip(times["reference"], times["fast"]) if fast_t > 0]
            case["speedup_fast_vs_reference"] = float(statistics.median(ratios))
        results[case_name] = case
        print(f"{case_name:32s} " + "  ".join(
            f"{k}={v:.6f}" if k.endswith("_s") else f"{k}={v:.2f}x"
            for k, v in case.items()))
        _maybe_trace(case_name)
    return results


def _load_baseline(path: str) -> dict | None:
    """Committed results of one BENCH json file, or None when unreadable."""
    try:
        with open(path) as fh:
            data = json.load(fh)
        results = data.get("results")
        return results if isinstance(results, dict) else None
    except (OSError, ValueError):
        return None


def check_regressions(baseline: dict, fresh: dict, label: str,
                      tolerance: float = 0.15) -> list[str]:
    """Compare a fresh run against committed numbers; return problem strings.

    Every ``speedup_*`` ratio in the baseline must stay within ``tolerance``
    below its committed value; every ``overhead_*`` ratio within ``tolerance``
    above.  A case or ratio present in the baseline but missing from the
    fresh run is itself a failure — a silently-dropped benchmark must not
    read as a pass.  Cases either side *explicitly* recorded as skipped
    (a ``{"skipped": reason}`` entry, e.g. codegen cases on a
    toolchain-less host) are announced, not silently dropped, and are
    ignored.
    """
    problems = []
    for case_name, base_case in baseline.items():
        if not isinstance(base_case, dict) or "skipped" in base_case:
            continue
        fresh_case = fresh.get(case_name)
        if isinstance(fresh_case, dict) and "skipped" in fresh_case:
            continue
        if not isinstance(fresh_case, dict):
            problems.append(f"{label}:{case_name}: missing from fresh run")
            continue
        for key, base_val in base_case.items():
            if not isinstance(base_val, (int, float)):
                continue
            lower = key.startswith("speedup_")
            if not lower and not key.startswith("overhead_"):
                continue
            fresh_val = fresh_case.get(key)
            pct = int(round(tolerance * 100))
            if not isinstance(fresh_val, (int, float)):
                problems.append(f"{label}:{case_name}.{key}: missing from "
                                "fresh run")
            elif lower and fresh_val < base_val * (1.0 - tolerance):
                drop = (1.0 - fresh_val / base_val) * 100.0
                problems.append(
                    f"{label}:{case_name}.{key}: measured {fresh_val:.2f}x "
                    f"is {drop:.0f}% below committed {base_val:.2f}x "
                    f"(tolerance {pct}%) | committed={base_val:.2f}x "
                    f"measured={fresh_val:.2f}x")
            elif not lower and fresh_val > base_val * (1.0 + tolerance):
                rise = (fresh_val / base_val - 1.0) * 100.0
                problems.append(
                    f"{label}:{case_name}.{key}: measured {fresh_val:.2f}x "
                    f"is {rise:.0f}% above committed {base_val:.2f}x "
                    f"(tolerance {pct}%) | committed={base_val:.2f}x "
                    f"measured={fresh_val:.2f}x")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--output", default=os.path.join(os.path.dirname(_HERE),
                                                         "BENCH_kernels.json"))
    parser.add_argument("--serve-output",
                        default=os.path.join(os.path.dirname(_HERE),
                                             "BENCH_serve.json"))
    parser.add_argument("--train-output",
                        default=os.path.join(os.path.dirname(_HERE),
                                             "BENCH_train.json"))
    parser.add_argument("--repeats", type=int, default=15)
    parser.add_argument("--warmup", type=int, default=2)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny repeat counts, no perf gating (CI plumbing "
                             "check)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed BENCH json files "
                             "(>15% regression fails) instead of overwriting "
                             "them")
    parser.add_argument("--trace", metavar="DIR", default=None,
                        help="enable repro.obs for the whole run and write "
                             "one Chrome-trace JSON file per case into DIR")
    args = parser.parse_args(argv)
    if args.smoke:
        args.repeats = min(args.repeats, 3)
        args.warmup = min(args.warmup, 1)

    from repro import obs
    from repro.engine import autotune, plan_cache_stats
    from repro.kernels import codegen, get_backend

    if args.trace:
        global _TRACE_DIR
        os.makedirs(args.trace, exist_ok=True)
        _TRACE_DIR = args.trace
        obs.enable()

    baselines = {}
    if args.check:
        for path in (args.output, args.serve_output, args.train_output):
            baseline = _load_baseline(path)
            if baseline is None:
                print(f"--check: no readable baseline at {path}")
                return 0 if args.smoke else 1
            baselines[path] = baseline

    meta = {
        "workload": {"input": list(X.shape), "weight": list(W.shape),
                     "padding": 1},
        "repeats": args.repeats,
        "warmup": args.warmup,
        "numpy": np.__version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "backend": get_backend(None).name,
        "autotune_mode": autotune.get_mode(),
    }

    def meta_now() -> dict:
        """Meta plus live cache counters at write time (satellite 2)."""
        pc = plan_cache_stats()
        return dict(meta,
                    plan_cache={"hits": pc.hits, "misses": pc.misses,
                                "evictions": pc.evictions, "size": pc.size},
                    tuning_cache=autotune.stats_dict(),
                    codegen_available=codegen.available(),
                    codegen_cache=codegen.stats_dict(),
                    obs=dict(obs.status(), trace_dir=args.trace))

    results = run_benchmarks(args.repeats, args.warmup)
    results.update(planned_vs_eager_cases(args.repeats, args.warmup))
    results.update(tuned_vs_fast_cases(args.repeats, args.warmup))
    results.update(compiled_vs_fast_cases(args.repeats, args.warmup))
    if not args.check:
        with open(args.output, "w") as fh:
            json.dump({"meta": meta_now(), "results": results}, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.output}")

    serve_results = serve_cases(args.repeats, args.warmup)
    if not args.check:
        with open(args.serve_output, "w") as fh:
            json.dump({"meta": meta_now(), "results": serve_results}, fh,
                      indent=2)
            fh.write("\n")
        print(f"wrote {args.serve_output}")

    train_results = train_cases(args.repeats, args.warmup)
    if not args.check:
        with open(args.train_output, "w") as fh:
            json.dump({"meta": meta_now(), "results": train_results}, fh,
                      indent=2)
            fh.write("\n")
        print(f"wrote {args.train_output}")

    if args.check:
        problems = (check_regressions(baselines[args.output], results,
                                      "kernels")
                    + check_regressions(baselines[args.serve_output],
                                        serve_results, "serve")
                    + check_regressions(baselines[args.train_output],
                                        train_results, "train"))
        for problem in problems:
            print(f"REGRESSION {problem}")
        if not problems:
            print("--check: no regressions against committed baselines")
        if args.smoke:
            return 0
        return 1 if problems else 0

    headline = results.get("winograd_f4_forward", {})
    speedup = headline.get("speedup_fast_vs_reference", 0.0)
    planned = results.get("planned_f4_forward", {}).get(
        "speedup_planned_vs_eager", 0.0)
    served = serve_results.get("served_model_f4", {}).get(
        "speedup_served_vs_per_layer", 0.0)
    pool_cases = [case for name, case in serve_results.items()
                  if name.startswith("shm_pool_batch")]
    # No measured cases (shm skipped) must fail the gate, not pass vacuously.
    pool_ok = bool(pool_cases) and all(
        case.get("speedup_shm_vs_pickle", 0.0) > 1.0 for case in pool_cases)
    overhead = serve_results.get("shm_pool_supervision_overhead", {}).get(
        "overhead_supervised_vs_bare")
    overhead_ok = overhead is not None and overhead <= 1.05
    obs_overhead = serve_results.get("obs_overhead_serve", {}).get(
        "overhead_obs_vs_off")
    obs_overhead_ok = obs_overhead is not None and obs_overhead <= 1.05
    tuned_ratios = {name: case.get("speedup_tuned_vs_fast", 0.0)
                    for name, case in {**results, **serve_results}.items()
                    if name.startswith("tuned_")}
    tuned_ok = bool(tuned_ratios) and all(r >= 1.0
                                          for r in tuned_ratios.values())
    tuned_fwd = max(tuned_ratios.get("tuned_f2_forward", 0.0),
                    tuned_ratios.get("tuned_f4_forward", 0.0))
    # Each compiled_* case carries one speedup_* ratio (vs fast where the
    # tuner bound codegen, vs forced-codegen where it declined it).
    compiled_ratios = {name: val
                       for name, case in results.items()
                       if name.startswith("compiled_")
                       and isinstance(case, dict)
                       for key, val in case.items()
                       if key.startswith("speedup_")
                       and isinstance(val, (int, float))}
    compiled_ok = (bool(compiled_ratios)
                   and all(r >= 1.0 for r in compiled_ratios.values())
                   and max(compiled_ratios.values()) >= 1.25)
    dp_case = train_results.get("dp_train_step_scaling", {})
    dp_speedup = dp_case.get("speedup_dp4_vs_single")
    cores = int(os.cpu_count() or 1)
    # The parallel-scaling target only binds where parallelism is physically
    # possible; a skipped or sub-4-core measurement must still be *present*.
    dp_ok = dp_speedup is not None and (cores < 4 or dp_speedup >= 1.5)
    train_overhead = train_results.get("dp_train_supervision_overhead",
                                       {}).get("overhead_supervised_vs_bare")
    train_overhead_ok = train_overhead is not None and train_overhead <= 1.05
    print(f"headline winograd_f4_forward speedup: {speedup:.2f}x (target >= 2x)")
    print(f"headline planned_f4_forward speedup:  {planned:.2f}x (target >= 1.3x)")
    print(f"headline served_model_f4 speedup:     {served:.2f}x (target >= 1.2x)")
    print(f"shm pool beats pickle at batch <= 8:  {pool_ok}")
    if overhead is not None:
        print(f"supervision overhead:                 {overhead:.3f}x "
              "(target <= 1.05x)")
    if obs_overhead is not None:
        print(f"observability overhead:               {obs_overhead:.3f}x "
              "(target <= 1.05x)")
    print("tuned vs fast:                        "
          + "  ".join(f"{name}={r:.2f}x" for name, r in tuned_ratios.items())
          + "  (targets: all >= 1.0x, best forward >= 1.15x)")
    if compiled_ratios:
        print("compiled-tier arbitration:            "
              + "  ".join(f"{name}={r:.2f}x"
                          for name, r in compiled_ratios.items())
              + "  (targets: all >= 1.0x, best >= 1.25x)")
    else:
        print("compiled-tier arbitration:            skipped "
              "(codegen unavailable)")
    if dp_speedup is not None:
        print(f"dp training step speedup (4 workers): {dp_speedup:.2f}x "
              f"on {cores} core(s) (target >= 1.5x when cores >= 4)")
    if train_overhead is not None:
        print(f"dp training supervision overhead:     {train_overhead:.3f}x "
              "(target <= 1.05x)")
    if args.smoke:
        return 0
    return 0 if (speedup >= 2.0 and planned >= 1.3
                 and served >= 1.2 and pool_ok and overhead_ok
                 and obs_overhead_ok
                 and tuned_ok and tuned_fwd >= 1.15 and compiled_ok
                 and dp_ok and train_overhead_ok) else 1


if __name__ == "__main__":
    raise SystemExit(main())
