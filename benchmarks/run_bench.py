#!/usr/bin/env python
"""Kernel micro-benchmark harness: reference vs fast backend, planned vs eager.

Runs the library's computational kernels (im2col convolution, Winograd
F2/F4 forward, Winograd-aware autograd step, integer tap-wise path) under
both registered kernel backends, plus the execution-plan layer's planned
executor against the eager composed path, and writes ``BENCH_kernels.json``
with median wall-clock times and speedup ratios, so the repo's performance
trajectory is tracked from PR to PR.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--output PATH]
        [--repeats N] [--warmup N]

Two acceptance numbers (same 4x32x32x32 input, 32 output channels, F4):

* ``winograd_f4_forward``: the ``fast`` backend must stay >= 2x faster than
  ``reference``.
* ``planned_f4_forward``: the planned executor (bound CompiledConv streaming
  repeated same-shape batches through a cached LayerPlan) must be >= 1.3x
  faster than the eager composed tensor path — the per-stage autograd graph
  every forward used before :mod:`repro.engine` existed, and which the
  quantization-hook layers still run.  Both measurements are interleaved
  round by round (paired ratios) for robustness on loaded machines.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.kernels import available_backends, use_backend  # noqa: E402
from repro.nn.functional import conv2d_numpy  # noqa: E402
from repro.nn.tensor import Tensor  # noqa: E402
from repro.quant import (calibrate_tapwise_scales,  # noqa: E402
                         integer_winograd_conv2d)
from repro.winograd import (winograd_conv2d, winograd_conv2d_tensor,  # noqa: E402
                            winograd_f2, winograd_f4)

# Acceptance workload: 4x32x32x32 input, 32 output channels, 3x3 kernels.
_RNG = np.random.default_rng(0)
X = _RNG.normal(size=(4, 32, 32, 32))
W = _RNG.normal(size=(32, 32, 3, 3))
GRAD = _RNG.normal(size=(4, 32, 32, 32))


def _timed_call(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _autograd_step():
    x = Tensor(X, requires_grad=True)
    w = Tensor(W, requires_grad=True)
    out = winograd_conv2d_tensor(x, w, winograd_f4(), padding=1)
    out.backward(GRAD)


def _integer_case():
    scales = calibrate_tapwise_scales(X, W, winograd_f4(), power_of_two=True)

    def run():
        integer_winograd_conv2d(X, W, winograd_f4(), scales)

    return run


CASES = {
    "im2col_forward": lambda: conv2d_numpy(X, W, None, 1, 1),
    "winograd_f2_forward": lambda: winograd_conv2d(X, W, winograd_f2(), None, 1),
    "winograd_f4_forward": lambda: winograd_conv2d(X, W, winograd_f4(), None, 1),
    "winograd_f4_autograd_fwd_bwd": _autograd_step,
    "integer_tapwise_f4": _integer_case(),
}


# --------------------------------------------------------------------------- #
# Planned executor vs eager composed path
# --------------------------------------------------------------------------- #
def _identity(t):
    return t


def planned_vs_eager_cases(repeats: int, warmup: int) -> dict:
    """Paired-round medians of the planned executor against the eager path.

    * ``planned_f4_forward`` — a :class:`repro.engine.CompiledConv` (weights
      pre-transformed once, plan interned in the shared cache) streaming the
      acceptance workload, vs the composed tensor forward (an identity hook
      forces the per-stage graph, i.e. the pre-engine behaviour and today's
      quantization-hook path).
    * ``planned_f4_fused_autograd`` — the engine's fused single-node
      forward+backward vs the composed five-node graph's forward+backward.
    """
    from repro.engine import CompiledConv, clear_plan_cache

    clear_plan_cache()
    compiled = CompiledConv(W, padding=1, transform="F4")

    def planned_forward():
        compiled(X)

    def eager_forward():
        winograd_conv2d_tensor(Tensor(X), Tensor(W), winograd_f4(), padding=1,
                               input_tile_hook=_identity)

    def planned_autograd():
        x = Tensor(X, requires_grad=True)
        w = Tensor(W, requires_grad=True)
        out = winograd_conv2d_tensor(x, w, winograd_f4(), padding=1)
        out.backward(GRAD)

    def eager_autograd():
        x = Tensor(X, requires_grad=True)
        w = Tensor(W, requires_grad=True)
        out = winograd_conv2d_tensor(x, w, winograd_f4(), padding=1,
                                     input_tile_hook=_identity)
        out.backward(GRAD)

    results = {}
    pairs = {
        "planned_f4_forward": (planned_forward, eager_forward),
        "planned_f4_fused_autograd": (planned_autograd, eager_autograd),
    }
    for case_name, (planned_fn, eager_fn) in pairs.items():
        for _ in range(warmup):
            planned_fn()
            eager_fn()
        planned_times, eager_times = [], []
        # Interleaved rounds, same methodology as run_benchmarks.
        for _ in range(repeats):
            planned_times.append(_timed_call(planned_fn))
            eager_times.append(_timed_call(eager_fn))
        ratios = [e / p for p, e in zip(planned_times, eager_times) if p > 0]
        case = {
            "planned_s": float(statistics.median(planned_times)),
            "eager_s": float(statistics.median(eager_times)),
            "speedup_planned_vs_eager": float(statistics.median(ratios)),
        }
        results[case_name] = case
        print(f"{case_name:32s} " + "  ".join(
            f"{k}={v:.6f}" if k.endswith("_s") else f"{k}={v:.2f}x"
            for k, v in case.items()))
    return results


def run_benchmarks(repeats: int, warmup: int) -> dict:
    backends = available_backends()
    results = {}
    for case_name, fn in CASES.items():
        times = {name: [] for name in backends}
        for name in backends:
            with use_backend(name):
                for _ in range(warmup):
                    fn()
        # Interleave the backends round by round so that bursts of external
        # CPU contention (shared machines) hit both measurements equally; the
        # speedup is then the median of the *per-round paired* ratios, which
        # is robust to load shifting between rounds.
        for _ in range(repeats):
            for name in backends:
                with use_backend(name):
                    times[name].append(_timed_call(fn))
        case = {f"{name}_s": float(statistics.median(ts))
                for name, ts in times.items()}
        if "reference_s" in case and "fast_s" in case and case["fast_s"] > 0:
            ratios = [ref_t / fast_t for ref_t, fast_t
                      in zip(times["reference"], times["fast"]) if fast_t > 0]
            case["speedup_fast_vs_reference"] = float(statistics.median(ratios))
        results[case_name] = case
        print(f"{case_name:32s} " + "  ".join(
            f"{k}={v:.6f}" if k.endswith("_s") else f"{k}={v:.2f}x"
            for k, v in case.items()))
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--output", default=os.path.join(os.path.dirname(_HERE),
                                                         "BENCH_kernels.json"))
    parser.add_argument("--repeats", type=int, default=15)
    parser.add_argument("--warmup", type=int, default=2)
    args = parser.parse_args(argv)

    results = run_benchmarks(args.repeats, args.warmup)
    results.update(planned_vs_eager_cases(args.repeats, args.warmup))
    payload = {
        "meta": {
            "workload": {"input": list(X.shape), "weight": list(W.shape),
                         "padding": 1},
            "repeats": args.repeats,
            "warmup": args.warmup,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "results": results,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")

    headline = results.get("winograd_f4_forward", {})
    speedup = headline.get("speedup_fast_vs_reference", 0.0)
    planned = results.get("planned_f4_forward", {}).get(
        "speedup_planned_vs_eager", 0.0)
    print(f"headline winograd_f4_forward speedup: {speedup:.2f}x (target >= 2x)")
    print(f"headline planned_f4_forward speedup:  {planned:.2f}x (target >= 1.3x)")
    return 0 if (speedup >= 2.0 and planned >= 1.3) else 1


if __name__ == "__main__":
    raise SystemExit(main())
