"""Fig. 5 — cycle-usage breakdown of im2col vs Winograd F4."""

from repro.experiments import run_fig5
from repro.utils import print_table


def test_fig5_cycle_breakdown(run_once):
    result = run_once(run_fig5)
    print_table(result.headers, result.rows,
                title="Fig. 5 — cycle breakdown normalised to im2col", digits=3)
    f4_rows = [row for row in result.rows if row[1] == "F4"]
    assert all(row[2] < 1.0 for row in f4_rows)
    # The weight-phase share shrinks when the batch grows from 1 to 8
    # (13% -> 2% in the paper for the 128-channel workload).
    small = result.metadata["1, 32, 128, 128"]["weight_phase_fraction"]
    large = result.metadata["8, 32, 128, 128"]["weight_phase_fraction"]
    print(f"weight load+transform share: batch 1 = {small:.1%}, batch 8 = {large:.1%}")
    assert large < small
